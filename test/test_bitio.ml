module Bw = Lb_bitio.Bit_writer
module Br = Lb_bitio.Bit_reader

let test_single_bits () =
  let w = Bw.create () in
  List.iter (Bw.bit w) [ true; false; true; true; false ];
  Alcotest.(check int) "length" 5 (Bw.length_bits w);
  let r = Br.of_writer w in
  Alcotest.(check (list bool))
    "roundtrip"
    [ true; false; true; true; false ]
    (List.init 5 (fun _ -> Br.bit r));
  Alcotest.(check bool) "at end" true (Br.at_end r)

let test_fixed_width () =
  let w = Bw.create () in
  Bw.bits w ~value:0b1011 ~width:4;
  Bw.bits w ~value:0 ~width:3;
  Bw.bits w ~value:1 ~width:1;
  let r = Br.of_writer w in
  Alcotest.(check int) "first" 0b1011 (Br.bits r ~width:4);
  Alcotest.(check int) "second" 0 (Br.bits r ~width:3);
  Alcotest.(check int) "third" 1 (Br.bits r ~width:1)

let test_width_checks () =
  let w = Bw.create () in
  Alcotest.check_raises "value too large"
    (Invalid_argument "Bit_writer.bits: value out of range") (fun () ->
      Bw.bits w ~value:8 ~width:3);
  Alcotest.check_raises "negative width" (Invalid_argument "Bit_writer.bits: width")
    (fun () -> Bw.bits w ~value:0 ~width:(-1))

let test_gamma_known () =
  (* gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101" *)
  let bits_of n =
    let w = Bw.create () in
    Bw.gamma w n;
    Array.to_list (Bw.to_bool_array w)
  in
  Alcotest.(check (list bool)) "gamma 1" [ true ] (bits_of 1);
  Alcotest.(check (list bool)) "gamma 2" [ false; true; false ] (bits_of 2);
  Alcotest.(check (list bool))
    "gamma 5"
    [ false; false; true; false; true ]
    (bits_of 5)

let test_gamma_lengths () =
  List.iter
    (fun n ->
      let w = Bw.create () in
      Bw.gamma w n;
      Alcotest.(check int)
        (Printf.sprintf "gamma length %d" n)
        ((2 * Lb_util.Xmath.floor_log2 n) + 1)
        (Bw.length_bits w))
    [ 1; 2; 3; 4; 7; 8; 100; 1000 ]

let test_exhausted () =
  let w = Bw.create () in
  Bw.bit w true;
  let r = Br.of_writer w in
  ignore (Br.bit r);
  Alcotest.check_raises "exhausted" Br.Exhausted (fun () -> ignore (Br.bit r))

let test_to_bytes_padding () =
  let w = Bw.create () in
  Bw.bits w ~value:0b101 ~width:3;
  let b = Bw.to_bytes w in
  Alcotest.(check int) "one byte" 1 (Bytes.length b);
  Alcotest.(check int) "msb-first padded" 0b10100000 (Char.code (Bytes.get b 0))

let gamma_roundtrip =
  QCheck.Test.make ~name:"gamma roundtrip" ~count:500
    QCheck.(list (int_range 1 1_000_000))
    (fun xs ->
      let w = Bw.create () in
      List.iter (Bw.gamma w) xs;
      let r = Br.of_writer w in
      let ys = List.map (fun _ -> Br.gamma r) xs in
      ys = xs && Br.at_end r)

let gamma0_roundtrip =
  QCheck.Test.make ~name:"gamma0 roundtrip" ~count:500
    QCheck.(list (int_range 0 1_000_000))
    (fun xs ->
      let w = Bw.create () in
      List.iter (Bw.gamma0 w) xs;
      let r = Br.of_writer w in
      List.map (fun _ -> Br.gamma0 r) xs = xs)

let mixed_roundtrip =
  QCheck.Test.make ~name:"mixed fields roundtrip" ~count:300
    QCheck.(list (pair (int_range 0 255) (int_range 1 1000)))
    (fun xs ->
      let w = Bw.create () in
      List.iter
        (fun (a, b) ->
          Bw.bits w ~value:a ~width:8;
          Bw.gamma w b)
        xs;
      let r = Br.of_writer w in
      List.for_all
        (fun (a, b) -> Br.bits r ~width:8 = a && Br.gamma r = b)
        xs)

let bool_array_roundtrip =
  QCheck.Test.make ~name:"to_bool_array matches bit sequence" ~count:300
    QCheck.(list bool)
    (fun bs ->
      let w = Bw.create () in
      List.iter (Bw.bit w) bs;
      Array.to_list (Bw.to_bool_array w) = bs)

(* the spill-run read path: a writer's packed bytes, reopened through
   of_string, replay the exact bit stream — values, positions, padding *)
let test_of_string () =
  let w = Bw.create () in
  Bw.bits w ~value:0b1011 ~width:4;
  Bw.gamma0 w 41;
  Bw.gamma w 7;
  Bw.bit w true;
  let packed = Bytes.to_string (Bw.to_bytes w) in
  let r = Br.of_string ~bits:(Bw.length_bits w) packed in
  Alcotest.(check int) "fixed" 0b1011 (Br.bits r ~width:4);
  Alcotest.(check int) "gamma0" 41 (Br.gamma0 r);
  Alcotest.(check int) "gamma" 7 (Br.gamma r);
  Alcotest.(check bool) "bit" true (Br.bit r);
  Alcotest.(check bool) "bounded at the written length" true (Br.at_end r);
  (* without ~bits the zero padding is readable, by design *)
  let r2 = Br.of_string packed in
  Alcotest.(check int) "padding visible" (8 * String.length packed)
    (Br.remaining r2);
  let over = (8 * String.length packed) + 1 in
  Alcotest.check_raises "bits beyond the string"
    (Invalid_argument
       (Printf.sprintf "Bit_reader.of_string: %d bits in a %d-byte string" over
          (String.length packed)))
    (fun () -> ignore (Br.of_string ~bits:over packed))

(* ------------------------------ Key_run ------------------------------ *)

module Kr = Lb_bitio.Key_run

let sort_dedup keys =
  let tbl = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keys;
  let uniq = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  List.sort Kr.compare_keys uniq |> Array.of_list

let keys_of_run t =
  let acc = ref [] in
  Kr.iter (fun k -> acc := Array.copy k :: !acc) t;
  List.rev !acc

let zigzag_roundtrip =
  QCheck.Test.make ~name:"Key_run zigzag roundtrip" ~count:1000
    QCheck.(int_range (-(1 lsl 59)) ((1 lsl 59) - 1))
    (fun v -> Kr.unzig (Kr.zig v) = v && Kr.zig v >= 0)

let key_run_roundtrip =
  (* shared-prefix delta coding over sorted runs: pack, then stream back
     the exact key sequence. Random key lists exercise long shared
     prefixes (duplicated draws differing in one slot) and prefix 0 *)
  QCheck.Test.make ~name:"Key_run pack/iter roundtrip" ~count:300
    QCheck.(pair (int_range 1 6) (small_list (small_list small_signed_int)))
    (fun (keylen, raw) ->
      let keys =
        sort_dedup
          (List.map
             (fun xs ->
               Array.init keylen (fun i ->
                   match List.nth_opt xs i with Some v -> v | None -> 0))
             raw)
      in
      let t = Kr.of_sorted_array keys in
      Kr.count t = Array.length keys
      && keys_of_run t = Array.to_list keys)

let key_run_merge_dedup =
  (* k-way merge of overlapping runs = one run of the sorted union *)
  QCheck.Test.make ~name:"Key_run merge drops duplicates" ~count:200
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(1 -- 5) (small_list (small_list small_signed_int))))
    (fun (keylen, groups) ->
      let key xs =
        Array.init keylen (fun i ->
            match List.nth_opt xs i with Some v -> v | None -> 0)
      in
      let runs =
        List.map
          (fun g -> Kr.of_sorted_array (sort_dedup (List.map key g)))
          groups
      in
      let expect = sort_dedup (List.concat_map (List.map key) groups) in
      keys_of_run (Kr.merge runs) = Array.to_list expect)

let test_key_run_non_byte_aligned_tail () =
  (* three one-slot keys pack to a bit count that is not a multiple of
     8; the zero padding in the final byte must not decode as a
     phantom key *)
  let keys = [| [| 0 |]; [| 1 |]; [| 2 |] |] in
  let t = Kr.of_sorted_array keys in
  Alcotest.(check int) "count" 3 (Kr.count t);
  (* 12 bits of records round up to 2 bytes — 4 bits of padding *)
  Alcotest.(check int) "packed tail rounds up" 2 (Kr.byte_length t);
  Alcotest.(check (list (list int)))
    "keys back"
    [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (List.map Array.to_list (keys_of_run t));
  let c = Kr.cursor t in
  ignore (Kr.next c);
  ignore (Kr.next c);
  ignore (Kr.next c);
  Alcotest.(check bool) "cursor ends" true (Kr.next c = None)

let test_key_run_ascending_check () =
  let e = Kr.encoder () in
  Kr.add e [| 1; 2 |];
  Alcotest.check_raises "equal key rejected"
    (Invalid_argument "Key_run.add: keys must be strictly ascending")
    (fun () -> Kr.add e [| 1; 2 |]);
  Alcotest.check_raises "descending key rejected"
    (Invalid_argument "Key_run.add: keys must be strictly ascending")
    (fun () -> Kr.add e [| 0; 9 |])

let test_key_run_spill_codec_compat () =
  (* a run body and a Check_spill run-file body use the same per-key
     record: a stream hand-rolled from the write_key primitive decodes
     through read_key, and a run packing the same keys has the same
     payload size *)
  let keys = [| [| 3; -1; 4 |]; [| 3; -1; 5 |]; [| 3; 0; -9 |] |] in
  let w = Bw.create () in
  let prev = ref [||] in
  Array.iter
    (fun k ->
      Kr.write_key w ~prev:!prev k;
      prev := k)
    keys;
  let r = Br.of_writer w in
  let buf = Array.make 3 0 in
  let got = ref [] in
  for _ = 1 to 3 do
    Kr.read_key r buf;
    got := Array.to_list buf :: !got
  done;
  Alcotest.(check (list (list int)))
    "read_key replays write_key"
    (Array.to_list keys |> List.map Array.to_list)
    (List.rev !got);
  Alcotest.(check int)
    "run payload = hand-rolled stream size"
    (Bytes.length (Bw.to_bytes w))
    (Kr.byte_length (Kr.of_sorted_array keys))

let suite =
  [
    Alcotest.test_case "single bits" `Quick test_single_bits;
    Alcotest.test_case "of_string packed bytes" `Quick test_of_string;
    Alcotest.test_case "fixed width" `Quick test_fixed_width;
    Alcotest.test_case "width checks" `Quick test_width_checks;
    Alcotest.test_case "gamma known codes" `Quick test_gamma_known;
    Alcotest.test_case "gamma lengths" `Quick test_gamma_lengths;
    Alcotest.test_case "exhausted" `Quick test_exhausted;
    Alcotest.test_case "to_bytes padding" `Quick test_to_bytes_padding;
    Alcotest.test_case "key run non-byte-aligned tail" `Quick
      test_key_run_non_byte_aligned_tail;
    Alcotest.test_case "key run ascending check" `Quick
      test_key_run_ascending_check;
    Alcotest.test_case "key run spill codec compat" `Quick
      test_key_run_spill_codec_compat;
    QCheck_alcotest.to_alcotest gamma_roundtrip;
    QCheck_alcotest.to_alcotest gamma0_roundtrip;
    QCheck_alcotest.to_alcotest mixed_roundtrip;
    QCheck_alcotest.to_alcotest bool_array_roundtrip;
    QCheck_alcotest.to_alcotest zigzag_roundtrip;
    QCheck_alcotest.to_alcotest key_run_roundtrip;
    QCheck_alcotest.to_alcotest key_run_merge_dedup;
  ]
