module Poset = Lb_core.Poset

let chain n =
  let p = Poset.create () in
  for i = 0 to n - 1 do
    Poset.add_element p i
  done;
  for i = 0 to n - 2 do
    Poset.add_edge p i (i + 1)
  done;
  p

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let p = Poset.create () in
  List.iter (Poset.add_element p) [ 0; 1; 2; 3 ];
  List.iter (fun (a, b) -> Poset.add_edge p a b) [ (0, 1); (0, 2); (1, 3); (2, 3) ];
  p

let test_elements () =
  let p = chain 4 in
  Alcotest.(check int) "cardinal" 4 (Poset.cardinal p);
  Alcotest.(check (list int)) "elements" [ 0; 1; 2; 3 ] (Poset.elements p);
  Alcotest.(check bool) "mem" true (Poset.mem p 2);
  Alcotest.(check bool) "not mem" false (Poset.mem p 9);
  Alcotest.check_raises "duplicate" (Invalid_argument "Poset.add_element: duplicate")
    (fun () -> Poset.add_element p 0)

let test_leq_chain () =
  let p = chain 5 in
  Alcotest.(check bool) "0 <= 4" true (Poset.leq p 0 4);
  Alcotest.(check bool) "4 <= 0 false" false (Poset.leq p 4 0);
  Alcotest.(check bool) "reflexive" true (Poset.leq p 2 2)

let test_leq_diamond () =
  let p = diamond () in
  Alcotest.(check bool) "0 <= 3" true (Poset.leq p 0 3);
  Alcotest.(check bool) "1 and 2 incomparable" false
    (Poset.leq p 1 2 || Poset.leq p 2 1)

let test_cycle_rejected () =
  let p = chain 3 in
  (match Poset.add_edge p 2 0 with
  | () -> Alcotest.fail "cycle accepted"
  | exception Poset.Cycle (2, 0) -> ());
  (* self edges are ignored, duplicates idempotent *)
  Poset.add_edge p 1 1;
  Poset.add_edge p 0 1;
  Alcotest.(check (list int)) "no duplicate succ" [ 1 ] (Poset.succs p 0)

let test_down_set () =
  let p = diamond () in
  Alcotest.(check (list int)) "down of 3" [ 0; 1; 2; 3 ]
    (List.sort compare (Poset.down_set p 3));
  Alcotest.(check (list int)) "down of 1" [ 0; 1 ]
    (List.sort compare (Poset.down_set p 1));
  Alcotest.(check (list int)) "down of 0" [ 0 ] (Poset.down_set p 0)

let test_down_set_stopping () =
  let p = chain 5 in
  Alcotest.(check (list int)) "stop at executed" [ 3; 4 ]
    (List.sort compare
       (Poset.down_set_stopping p 4 ~stop:(fun x -> x <= 2)));
  Alcotest.(check (list int)) "stopped root" []
    (Poset.down_set_stopping p 4 ~stop:(fun _ -> true))

let test_extremes () =
  let p = diamond () in
  Alcotest.(check (list int)) "maximal among all" [ 3 ]
    (Poset.maximal_among p [ 0; 1; 2; 3 ]);
  Alcotest.(check (list int)) "maximal among 1,2" [ 1; 2 ]
    (List.sort compare (Poset.maximal_among p [ 1; 2 ]));
  Alcotest.(check (list int)) "minimal among all" [ 0 ]
    (Poset.minimal_among p [ 0; 1; 2; 3 ])

let test_topo_sort () =
  let p = diamond () in
  Alcotest.(check (list int)) "deterministic topo" [ 0; 1; 2; 3 ]
    (Poset.topo_sort p [ 3; 2; 1; 0 ]);
  (* subset sort *)
  Alcotest.(check (list int)) "subset" [ 1; 3 ] (Poset.topo_sort p [ 3; 1 ])

let test_is_chain () =
  let p = diamond () in
  Alcotest.(check bool) "chain 0,1,3" true (Poset.is_chain p [ 0; 1; 3 ]);
  Alcotest.(check bool) "not chain 1,2" false (Poset.is_chain p [ 1; 2 ]);
  Alcotest.(check bool) "empty chain" true (Poset.is_chain p [])

(* random DAG property tests *)

let random_dag seed size =
  let rng = Lb_util.Rng.create seed in
  let p = Poset.create () in
  for i = 0 to size - 1 do
    Poset.add_element p i
  done;
  (* only forward edges: guaranteed acyclic *)
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      if Lb_util.Rng.int rng 4 = 0 then Poset.add_edge p i j
    done
  done;
  p

let topo_respects_order =
  QCheck.Test.make ~name:"topo_sort respects leq" ~count:50
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, size) ->
      let p = random_dag seed size in
      let order = Poset.topo_sort p (Poset.elements p) in
      let pos = Hashtbl.create size in
      List.iteri (fun i x -> Hashtbl.replace pos x i) order;
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              (not (Poset.leq p a b)) || a = b
              || Hashtbl.find pos a < Hashtbl.find pos b)
            (Poset.elements p))
        (Poset.elements p))

let down_set_is_leq =
  QCheck.Test.make ~name:"down_set = {x | x leq m}" ~count:50
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, size) ->
      let p = random_dag seed size in
      List.for_all
        (fun m ->
          let ds = List.sort_uniq compare (Poset.down_set p m) in
          let expected =
            List.filter (fun x -> Poset.leq p x m) (Poset.elements p)
          in
          ds = List.sort compare expected)
        (Poset.elements p))

let leq_transitive =
  QCheck.Test.make ~name:"leq transitive" ~count:30
    QCheck.(pair small_int (int_range 3 10))
    (fun (seed, size) ->
      let p = random_dag seed size in
      let els = Poset.elements p in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun c ->
                  (not (Poset.leq p a b && Poset.leq p b c)) || Poset.leq p a c)
                els)
            els)
        els)

let suite =
  [
    Alcotest.test_case "elements" `Quick test_elements;
    Alcotest.test_case "leq chain" `Quick test_leq_chain;
    Alcotest.test_case "leq diamond" `Quick test_leq_diamond;
    Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "down_set" `Quick test_down_set;
    Alcotest.test_case "down_set_stopping" `Quick test_down_set_stopping;
    Alcotest.test_case "maximal/minimal" `Quick test_extremes;
    Alcotest.test_case "topo_sort" `Quick test_topo_sort;
    Alcotest.test_case "is_chain" `Quick test_is_chain;
    QCheck_alcotest.to_alcotest topo_respects_order;
    QCheck_alcotest.to_alcotest down_set_is_leq;
    QCheck_alcotest.to_alcotest leq_transitive;
  ]
