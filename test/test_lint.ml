(* The static analyzer: every seeded defect class is detected with a
   witness, the registry is lint-clean modulo its expected-findings
   allowlist, the report is identical at every job count, and the
   pre-PR-2 yang_anderson "rt2" repr collision is caught statically. *)

open Lb_shmem
module Driver = Lb_analysis.Driver
module Finding = Lb_analysis.Finding

(* ---------------------- deliberately-defective fixtures -------------- *)

(* Small hand-rolled automata over integer states. Each is a registry-
   shaped Algorithm.t, so the analyzer sees exactly what it would see
   for a real algorithm. *)
let fixture ~name ?kind ~registers ~pending ~advance ~repr () =
  let module S = struct
    type state = int

    let initial ~n:_ ~me:_ = 0
    let pending ~n:_ ~me:_ st = pending st
    let advance ~n:_ ~me:_ st resp = advance st resp
    let repr = repr
  end in
  let module Sp = Proc.Make_spawn (S) in
  Lb_algos.Common.make ~name ~description:"lint test fixture" ?kind
    ~registers ~spawn:Sp.spawn ()

let one_lock ~n:_ = [| Register.spec ~domain:(0, 1) "lock" |]

(* Two observably different states both named "gate": state 1 pends
   W lock:=1, state 2 pends W lock:=0. *)
let collide =
  fixture ~name:"fix_collide" ~registers:one_lock
    ~pending:(function
      | 0 -> Step.Crit Step.Try
      | 1 -> Step.Write (0, 1)
      | _ -> Step.Write (0, 0))
    ~advance:(fun st _ -> match st with 0 -> 1 | 1 -> 2 | _ -> 1)
    ~repr:(function 0 -> "start" | _ -> "gate")
    ()

(* Writes 7 into a register declared over [0, 1]. *)
let domain_breaker =
  fixture ~name:"fix_domain" ~registers:one_lock
    ~pending:(function
      | 0 -> Step.Crit Step.Try
      | 1 -> Step.Write (0, 7)
      | 2 -> Step.Crit Step.Enter
      | 3 -> Step.Crit Step.Exit
      | _ -> Step.Crit Step.Rem)
    ~advance:(fun st _ -> (st + 1) mod 5)
    ~repr:(fun st -> Printf.sprintf "s%d" st)
    ()

(* A test-and-set lock that forgets to declare kind = Uses_rmw. *)
let dishonest_tas =
  fixture ~name:"fix_dishonest" ~registers:one_lock
    ~pending:(function
      | 0 -> Step.Crit Step.Try
      | 1 -> Step.Rmw (0, Step.Test_and_set)
      | 2 -> Step.Crit Step.Enter
      | 3 -> Step.Crit Step.Exit
      | 4 -> Step.Write (0, 0)
      | _ -> Step.Crit Step.Rem)
    ~advance:(fun st resp ->
      match (st, resp) with
      | 1, Step.Got 0 -> 2
      | 1, _ -> 1
      | 5, _ -> 0
      | st, _ -> st + 1)
    ~repr:(fun st -> Printf.sprintf "s%d" st)
    ()

(* Pure read/write automaton declared Uses_rmw. *)
let dead_rmw_claim =
  fixture ~name:"fix_dead_rmw" ~kind:Algorithm.Uses_rmw ~registers:one_lock
    ~pending:(function
      | 0 -> Step.Crit Step.Try
      | 1 -> Step.Write (0, 1)
      | 2 -> Step.Crit Step.Enter
      | 3 -> Step.Crit Step.Exit
      | _ -> Step.Crit Step.Rem)
    ~advance:(fun st _ -> (st + 1) mod 5)
    ~repr:(fun st -> Printf.sprintf "s%d" st)
    ()

(* Spins on a register whose whole response set (domain [0,0], no
   writer anywhere) loops back: the busy-wait can never escape, and the
   critical section is unreachable. *)
let stuck =
  fixture ~name:"fix_stuck"
    ~registers:(fun ~n:_ -> [| Register.spec ~domain:(0, 0) "cond" |])
    ~pending:(function 0 -> Step.Crit Step.Try | _ -> Step.Read 0)
    ~advance:(fun st _ -> match st with 0 -> 1 | st -> st)
    ~repr:(function 0 -> "start" | _ -> "wait")
    ()

(* First step is a write, not the protocol's try step. *)
let not_try =
  fixture ~name:"fix_not_try" ~registers:one_lock
    ~pending:(function
      | 0 -> Step.Write (0, 1)
      | 1 -> Step.Crit Step.Enter
      | 2 -> Step.Crit Step.Exit
      | _ -> Step.Crit Step.Rem)
    ~advance:(fun st _ -> (st + 1) mod 4)
    ~repr:(fun st -> Printf.sprintf "s%d" st)
    ()

(* Reads register 5 of a 1-register file. *)
let oob =
  fixture ~name:"fix_oob" ~registers:one_lock
    ~pending:(function 0 -> Step.Crit Step.Try | _ -> Step.Read 5)
    ~advance:(fun st _ -> match st with 0 -> 1 | st -> st)
    ~repr:(fun st -> Printf.sprintf "s%d" st)
    ()

(* ------------------------------ helpers ------------------------------ *)

let lint ?(sizes = [ 2 ]) ?(allow = fun _ -> []) algos =
  Driver.run ~sizes ~jobs:1 ~allow algos

let findings report = List.map fst report.Driver.findings

let find_rule report rule =
  List.find_opt (fun (f : Finding.t) -> f.rule = rule) (findings report)

let check_detects label algo rule ~witness =
  let report = lint [ algo ] in
  match find_rule report rule with
  | None ->
    Alcotest.failf "%s: expected %s among [%s]" label rule
      (String.concat "; "
         (List.map (fun (f : Finding.t) -> f.rule) (findings report)))
  | Some f ->
    if witness then
      Alcotest.(check bool)
        (label ^ " has witness")
        true (Option.is_some f.witness)

(* ------------------------- fixture detection ------------------------- *)

let test_collide () =
  check_detects "collide" collide "repr-soundness/collision" ~witness:true;
  let report = lint [ collide ] in
  match find_rule report "repr-soundness/collision" with
  | Some { witness = Some w; _ } ->
    Alcotest.(check string) "collision target" "gate" w.Finding.target
  | _ -> Alcotest.fail "collision witness missing"

let test_domain_breaker () =
  check_detects "domain" domain_breaker
    "register-discipline/domain-violation" ~witness:true

let test_dishonest_tas () =
  check_detects "dishonest" dishonest_tas "kind-honesty/undeclared-rmw"
    ~witness:true

let test_dead_rmw_claim () =
  check_detects "dead rmw" dead_rmw_claim "kind-honesty/dead-rmw-claim"
    ~witness:false

let test_stuck () =
  check_detects "stuck spin" stuck "liveness-shape/stuck-spin" ~witness:true;
  check_detects "missing cs" stuck "liveness-shape/missing-critical-section"
    ~witness:false

let test_not_try () =
  check_detects "not try" not_try "liveness-shape/initial-not-try"
    ~witness:false

let test_oob () =
  check_detects "oob" oob "register-discipline/out-of-bounds" ~witness:true

(* A correct fixture-sized algorithm stays clean (no fixture noise). *)
let test_clean_fixture () =
  let report = lint [ Lb_algos.Registry.find_exn "peterson2" ] in
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun (f : Finding.t) -> f.rule) (Driver.failures report))

(* ----------------------- rt2 collision regression -------------------- *)

(* yang_anderson's repr before PR 2 rendered the Read_t rival-pid state
   as "rt<r>", colliding with the distinct Read_t2 state "rt2". PR 2
   fixed it dynamically (model-checker state counts changed); the lint
   pass must catch the same defect statically, from the automaton
   alone. *)
module Prefix_state = struct
  include Lb_algos.Yang_anderson.State

  let repr (st : state) =
    match st with
    | Entry { k; epc = Read_t r } -> Printf.sprintf "e%d:rt%d" k r
    | st -> Lb_algos.Yang_anderson.State.repr st
end

module Prefix_spawn = Proc.Make_spawn (Prefix_state)

let ya_prefix =
  {
    Lb_algos.Yang_anderson.algorithm with
    name = "ya_prefix";
    spawn = Prefix_spawn.spawn;
  }

let test_ya_prefix_collision () =
  let report = lint ~sizes:[ 2 ] [ ya_prefix ] in
  match find_rule report "repr-soundness/collision" with
  | Some ({ witness = Some w; _ } as f) ->
    Alcotest.(check string) "algo" "ya_prefix" f.algo;
    Alcotest.(check string) "colliding repr" "e1:rt2" w.Finding.target
  | _ -> Alcotest.fail "pre-fix rt2 collision not detected"

(* ... and the fixed repr really is collision-free. *)
let test_ya_current_clean () =
  let report = lint ~sizes:[ 2; 3 ] [ Lb_algos.Yang_anderson.algorithm ] in
  Alcotest.(check (option Alcotest.reject)) "no collision" None
    (Option.map ignore (find_rule report "repr-soundness/collision"))

(* --------------------------- registry gate --------------------------- *)

let test_registry_clean_modulo_allowlist () =
  let report =
    lint ~sizes:Driver.default_sizes
      ~allow:Lb_algos.Registry.expected_findings Lb_algos.Registry.all
  in
  Alcotest.(check (list string)) "unexpected findings" []
    (List.map (fun (f : Finding.t) -> f.rule) (Driver.failures report));
  let suppressed = List.filter snd report.Driver.findings in
  Alcotest.(check bool) "allowlist actually suppresses something" true
    (List.length suppressed >= 1);
  (* the faulty controls really do produce their expected findings *)
  Alcotest.(check bool) "broken_spinlock racy finding present" true
    (List.exists
       (fun ((f : Finding.t), _) ->
         f.algo = "broken_spinlock"
         && f.rule = "register-discipline/racy-test-then-set")
       report.Driver.findings)

let test_registry_deterministic_across_jobs () =
  let run jobs =
    Driver.run ~sizes:[ 2; 3 ] ~jobs
      ~allow:Lb_algos.Registry.expected_findings Lb_algos.Registry.all
  in
  Alcotest.(check string) "jobs=1 = jobs=4" (Driver.to_json (run 1))
    (Driver.to_json (run 4))

(* ----------------------- Register.spec validation -------------------- *)

let check_invalid label f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" label

let test_spec_validation () =
  check_invalid "empty name" (fun () -> Register.spec "");
  check_invalid "negative init" (fun () -> Register.spec ~init:(-1) "r");
  check_invalid "negative domain" (fun () ->
      Register.spec ~domain:(-1, 3) "r");
  check_invalid "empty domain" (fun () -> Register.spec ~domain:(2, 1) "r");
  check_invalid "init outside domain" (fun () ->
      Register.spec ~init:5 ~domain:(0, 3) "r");
  let s = Register.spec ~init:2 ~domain:(1, 4) "r" in
  Alcotest.(check bool) "in_domain lo" true (Register.in_domain s 1);
  Alcotest.(check bool) "in_domain hi" true (Register.in_domain s 4);
  Alcotest.(check bool) "out below" false (Register.in_domain s 0);
  Alcotest.(check bool) "out above" false (Register.in_domain s 5);
  Alcotest.(check (list int)) "domain_values" [ 1; 2; 3; 4 ]
    (Option.get (Register.domain_values s));
  let unbounded = Register.spec "u" in
  Alcotest.(check bool) "unbounded nonneg" true
    (Register.in_domain unbounded 1_000_000);
  Alcotest.(check bool) "unbounded negative" false
    (Register.in_domain unbounded (-1));
  Alcotest.(check (option (list int))) "unbounded has no finite domain" None
    (Register.domain_values unbounded)

(* ----------------------- pipeline RMW refusal ------------------------ *)

let test_pipeline_refuses_rmw () =
  let tas = Lb_algos.Registry.find_exn "tas" in
  let pi = Lb_core.Permutation.of_array [| 1; 0 |] in
  check_invalid "Pipeline.run" (fun () ->
      ignore (Lb_core.Pipeline.run tas ~n:2 pi));
  check_invalid "Pipeline.certify" (fun () ->
      ignore (Lb_core.Pipeline.certify tas ~n:2 ~perms:[ pi ] ()));
  (match Lb_core.Pipeline.run tas ~n:2 pi with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the lint rule" true
      (Astring_contains.contains msg "kind-honesty/undeclared-rmw")
  | _ -> Alcotest.fail "expected Invalid_argument");
  (* registers-only algorithms still pass *)
  ignore
    (Lb_core.Pipeline.run (Lb_algos.Registry.find_exn "peterson2") ~n:2 pi)

let suite =
  [
    Alcotest.test_case "fixture: repr collision" `Quick test_collide;
    Alcotest.test_case "fixture: domain violation" `Quick test_domain_breaker;
    Alcotest.test_case "fixture: undeclared rmw" `Quick test_dishonest_tas;
    Alcotest.test_case "fixture: dead rmw claim" `Quick test_dead_rmw_claim;
    Alcotest.test_case "fixture: stuck spin" `Quick test_stuck;
    Alcotest.test_case "fixture: initial not try" `Quick test_not_try;
    Alcotest.test_case "fixture: out of bounds" `Quick test_oob;
    Alcotest.test_case "clean algorithm stays clean" `Quick test_clean_fixture;
    Alcotest.test_case "regression: pre-fix ya rt2 collision" `Quick
      test_ya_prefix_collision;
    Alcotest.test_case "current ya repr is collision-free" `Quick
      test_ya_current_clean;
    Alcotest.test_case "registry clean modulo allowlist" `Slow
      test_registry_clean_modulo_allowlist;
    Alcotest.test_case "report deterministic across jobs" `Slow
      test_registry_deterministic_across_jobs;
    Alcotest.test_case "Register.spec validation" `Quick test_spec_validation;
    Alcotest.test_case "pipeline refuses Uses_rmw" `Quick
      test_pipeline_refuses_rmw;
  ]
