(* Test runner: one alcotest binary aggregating every suite.
   Run with `dune runtest`; slow (model-checking / exhaustive) cases are
   tagged `Slow and can be skipped with ALCOTEST_QUICK_TESTS=1. *)

let () =
  Alcotest.run "mutexlb"
    [
      ("xmath", Test_xmath.suite);
      ("rng", Test_rng.suite);
      ("pool", Test_pool.suite);
      ("interner", Test_interner.suite);
      ("stats+vec+table", Test_stats_vec.suite);
      ("bitio", Test_bitio.suite);
      ("shmem", Test_shmem.suite);
      ("cost", Test_cost.suite);
      ("mutex", Test_mutex.suite);
      ("algorithms", Test_algorithms.suite);
      ("permutation", Test_permutation.suite);
      ("poset", Test_poset.suite);
      ("metastep", Test_metastep.suite);
      ("construct", Test_construct.suite);
      ("linearize", Test_linearize.suite);
      ("lemmas", Test_lemmas.suite);
      ("encode+decode", Test_encode_decode.suite);
      ("pipeline", Test_pipeline.suite);
      ("visibility", Test_visibility.suite);
      ("trace_io", Test_trace_io.suite);
      ("workload+adversary", Test_workload_adversary.suite);
      ("fairness", Test_fairness.suite);
      ("experiments", Test_experiments.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("distrib", Test_distrib.suite);
      ("faults", Test_faults.suite);
      ("lint", Test_lint.suite);
      ("mutate", Test_mutate.suite);
      ("cli", Test_cli.suite);
      ("properties", Test_properties.suite);
    ]
