(* The fault-injection subsystem: plan validation, the algorithm-wrapping
   combinator (determinism, state-space hygiene, every fault kind firing
   where it should), starvation pickers, the chaos detection matrix
   (honesty + jobs-independent JSON), and the wall-clock resource guards
   on the runner and model checker. *)

open Lb_shmem
module Fault = Lb_faults.Fault
module Inject = Lb_faults.Inject
module Matrix = Lb_faults.Matrix
module MC = Lb_mutex.Model_check

let p2 = Lb_algos.Peterson2.algorithm
let ya = Lb_algos.Yang_anderson.algorithm
let tas = Lb_algos.Rmw_locks.test_and_set
let plan1 f = { Fault.label = Fault.fault_to_string f; faults = [ f ] }

(* ------------------------------- plans ------------------------------- *)

let test_validate () =
  let ok p = Alcotest.(check bool) "valid" true (Fault.validate ~n:2 p = Ok ()) in
  let bad what p =
    match Fault.validate ~n:2 p with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  ok (plan1 (Fault.Crash { proc = 0; at = Fault.In_section Step.Rem }));
  ok { Fault.label = "control"; faults = [] };
  bad "empty label" { Fault.label = ""; faults = [] };
  bad "uppercase label" { Fault.label = "Bad Label"; faults = [] };
  bad "proc out of range" (plan1 (Fault.Lost_write { proc = 2; nth = 1 }));
  bad "negative proc" (plan1 (Fault.Stale_read { proc = -1; nth = 1 }));
  bad "nth zero" (plan1 (Fault.Lost_write { proc = 0; nth = 0 }));
  bad "after_steps zero" (plan1 (Fault.Crash { proc = 0; at = Fault.After_steps 0 }));
  bad "empty starve window" (plan1 (Fault.Starve { proc = 0; from_ = 3; len = 0 }));
  bad "negative starve start" (plan1 (Fault.Starve { proc = 0; from_ = -1; len = 5 }))

let test_generate_deterministic () =
  let draw seed = Fault.generate (Lb_util.Rng.create seed) ~n:3 in
  let render p =
    p.Fault.label ^ ":"
    ^ String.concat "," (List.map Fault.fault_to_string p.Fault.faults)
  in
  Alcotest.(check string) "same seed, same plan" (render (draw 7)) (render (draw 7));
  (* every generated plan is valid and self-describing *)
  for seed = 0 to 49 do
    let p = draw seed in
    (match Fault.validate ~n:3 p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d generated invalid plan: %s" seed e);
    match p.Fault.faults with
    | [ f ] ->
      Alcotest.(check string) "label names the fault" (Fault.fault_to_string f)
        p.Fault.label
    | _ -> Alcotest.fail "generate must draw exactly one fault"
  done

(* ------------------------------ wrapping ----------------------------- *)

let test_wrap_name_and_validation () =
  let plan = plan1 (Fault.Crash { proc = 0; at = Fault.In_section Step.Rem }) in
  let w = Inject.wrap plan p2 in
  Alcotest.(check string) "name carries the label"
    (p2.Algorithm.name ^ "+" ^ plan.Fault.label)
    w.Algorithm.name;
  (* a plan targeting a process the system doesn't have is rejected at
     spawn time, when n is finally known *)
  let w = Inject.wrap (plan1 (Fault.Lost_write { proc = 5; nth = 1 })) p2 in
  match w.Algorithm.spawn ~n:2 ~me:0 with
  | _ -> Alcotest.fail "expected Invalid_argument at spawn"
  | exception Invalid_argument _ -> ()

let test_empty_plan_preserves_state_space () =
  let bare = MC.explore p2 ~n:2 in
  let ctrl = MC.explore (Inject.wrap { Fault.label = "control"; faults = [] } p2) ~n:2 in
  (match (bare.MC.verdict, ctrl.MC.verdict) with
  | MC.Verified, MC.Verified -> ()
  | _ -> Alcotest.fail "expected verified on both");
  Alcotest.(check int) "states" bare.MC.states ctrl.MC.states;
  Alcotest.(check int) "transitions" bare.MC.transitions ctrl.MC.transitions

let test_wrapped_reprs_deterministic () =
  (* two spawns of the same wrapped process walk identical repr paths *)
  let w = Inject.wrap (plan1 (Fault.Lost_write { proc = 0; nth = 2 })) p2 in
  let walk () =
    let rec go acc p k =
      if k = 0 then List.rev acc
      else
        let resp =
          match p.Proc.pending with
          | Step.Read _ -> Step.Got 0
          | Step.Write _ | Step.Crit _ -> Step.Ack
          | Step.Rmw _ -> Step.Got 0
        in
        let p' = p.Proc.advance resp in
        go (p'.Proc.repr :: acc) p' (k - 1)
    in
    go [] (w.Algorithm.spawn ~n:2 ~me:0) 8
  in
  Alcotest.(check (list string)) "repr path reproducible" (walk ()) (walk ())

(* ------------------------- crash / recovery -------------------------- *)

let test_crash_at_rem_benign () =
  let w = Inject.wrap (plan1 (Fault.Crash { proc = 0; at = Fault.In_section Step.Rem })) p2 in
  (match (MC.explore w ~n:2).MC.verdict with
  | MC.Verified -> ()
  | v -> Alcotest.failf "rounds=1: %s" (Format.asprintf "%a" MC.pp_verdict v));
  (* the RME scenario proper: restart and complete a full second cycle *)
  match (MC.explore w ~n:2 ~rounds:2).MC.verdict with
  | MC.Verified -> ()
  | v -> Alcotest.failf "rounds=2: %s" (Format.asprintf "%a" MC.pp_verdict v)

let test_crash_mid_protocol_detected () =
  let w = Inject.wrap (plan1 (Fault.Crash { proc = 0; at = Fault.In_section Step.Try })) p2 in
  match (MC.explore w ~n:2).MC.verdict with
  | MC.Ill_formed { trace; who; detail } ->
    Alcotest.(check int) "culprit is the crashed process" 0 who;
    Alcotest.(check bool) "detail non-empty" true (String.length detail > 0);
    (* the witness replays cleanly through the wrapped automata: the
       crash is part of the automaton, not an engine artifact *)
    ignore (Execution.replay w ~n:2 trace)
  | MC.Deadlock _ -> ()
  | v -> Alcotest.failf "undetected: %s" (Format.asprintf "%a" MC.pp_verdict v)

(* --------------------------- register faults ------------------------- *)

let check_detects what w expected =
  match (MC.explore w ~n:2).MC.verdict with
  | v ->
    let got =
      match v with
      | MC.Verified -> "verified"
      | MC.Mutex_violation _ -> "mutex_violation"
      | MC.Deadlock _ -> "deadlock"
      | MC.Ill_formed _ -> "ill_formed"
      | MC.Bound_exceeded _ -> "bound_exceeded"
      | MC.Deadline_exceeded _ -> "deadline_exceeded"
      | MC.Mem_exceeded _ -> "mem_exceeded"
    in
    if not (List.mem got expected) then
      Alcotest.failf "%s: got %s, expected one of [%s]" what got
        (String.concat "; " expected)

let test_register_faults_detected () =
  check_detects "lost flag write"
    (Inject.wrap (plan1 (Fault.Lost_write { proc = 0; nth = 1 })) p2)
    [ "mutex_violation" ];
  check_detects "stale read"
    (Inject.wrap (plan1 (Fault.Stale_read { proc = 0; nth = 1 })) p2)
    [ "mutex_violation" ];
  check_detects "corrupt write, in-domain"
    (Inject.wrap (plan1 (Fault.Corrupt_write { proc = 0; nth = 1; off_domain = false })) p2)
    [ "mutex_violation" ];
  check_detects "corrupt write, off-domain"
    (Inject.wrap (plan1 (Fault.Corrupt_write { proc = 0; nth = 2; off_domain = true })) p2)
    [ "mutex_violation" ];
  check_detects "lost release on tas"
    (Inject.wrap (plan1 (Fault.Lost_write { proc = 0; nth = 1 })) tas)
    [ "deadlock" ]

let test_mutex_violation_witness_replays () =
  let w = Inject.wrap (plan1 (Fault.Stale_read { proc = 0; nth = 1 })) p2 in
  match (MC.explore w ~n:2).MC.verdict with
  | MC.Mutex_violation trace ->
    ignore (Execution.replay w ~n:2 trace);
    (match Lb_mutex.Checker.check ~n:2 trace with
    | Error (Lb_mutex.Checker.Mutex_violated _) -> ()
    | Ok () -> Alcotest.fail "checker disagrees with the model checker"
    | Error (Lb_mutex.Checker.Not_well_formed _) ->
      Alcotest.fail "witness should violate mutex, not well-formedness")
  | v -> Alcotest.failf "expected a violation: %s" (Format.asprintf "%a" MC.pp_verdict v)

(* ----------------------- starvation + resource guards ---------------- *)

let test_starve_out_of_fuel_replayable () =
  (* starving the lock holder forever: the other process burns the step
     budget spinning, and the partial execution must replay cleanly *)
  let picker =
    Inject.starve
      [ Fault.Starve { proc = 0; from_ = 5; len = 1_000_000 } ]
      (Runner.round_robin ())
  in
  match Runner.run tas ~n:2 ~max_steps:4_000 picker with
  | _ -> Alcotest.fail "expected Out_of_fuel"
  | exception Runner.Out_of_fuel partial ->
    Alcotest.(check int) "fuel exhausted exactly" 4_000 (Execution.length partial);
    ignore (Execution.replay tas ~n:2 partial)

let test_stuck_on_faulty_deadlock () =
  (* a lost release really deadlocks a concrete schedule: the spin loop
     can never change state again and round_robin reports Stuck *)
  let w = Inject.wrap (plan1 (Fault.Lost_write { proc = 0; nth = 1 })) tas in
  match Runner.run w ~n:2 (Runner.round_robin ()) with
  | _ -> Alcotest.fail "expected Stuck"
  | exception Runner.Stuck -> ()
  | exception Runner.Out_of_fuel _ -> Alcotest.fail "expected Stuck, not fuel"

let test_runner_deadline () =
  (* an already-expired deadline still yields a replayable partial *)
  let picker _view = Some 0 in
  match Runner.run tas ~n:2 ~deadline:(-1.0) picker with
  | _ -> Alcotest.fail "expected Deadline_exceeded"
  | exception Runner.Deadline_exceeded partial ->
    ignore (Execution.replay tas ~n:2 partial)

let test_model_check_deadline () =
  match (MC.explore ya ~n:3 ~deadline:(-1.0)).MC.verdict with
  | MC.Deadline_exceeded states ->
    Alcotest.(check bool) "partial statistics sane" true (states >= 0)
  | v -> Alcotest.failf "expected deadline: %s" (Format.asprintf "%a" MC.pp_verdict v)

(* --------------------------- detection matrix ------------------------ *)

let quick_cells =
  [
    { Matrix.algo = "peterson2"; n = 2;
      plan = { Fault.label = "none"; faults = [] };
      engine = Matrix.Model_check { rounds = 1 }; expect = Matrix.Benign };
    { Matrix.algo = "peterson2"; n = 2;
      plan = plan1 (Fault.Stale_read { proc = 0; nth = 1 });
      engine = Matrix.Model_check { rounds = 1 };
      expect = Matrix.Detects [ "mutex_violation" ] };
    { Matrix.algo = "tas"; n = 2;
      plan = plan1 (Fault.Lost_write { proc = 0; nth = 1 });
      engine = Matrix.Model_check { rounds = 1 };
      expect = Matrix.Detects [ "deadlock" ] };
    { Matrix.algo = "broken_spinlock"; n = 2;
      plan = { Fault.label = "none"; faults = [] };
      engine = Matrix.Model_check { rounds = 1 };
      expect = Matrix.Detects [ "mutex_violation" ] };
  ]

let test_matrix_quick_honest_and_deterministic () =
  let seq = Matrix.run ~jobs:1 quick_cells in
  let par = Matrix.run ~jobs:4 quick_cells in
  Alcotest.(check bool) "honest" true seq.Matrix.honest;
  Alcotest.(check int) "all cells pass" (List.length quick_cells) seq.Matrix.passed;
  Alcotest.(check string) "JSON independent of job count"
    (Matrix.to_json seq) (Matrix.to_json par)

let test_matrix_shipped_honest () =
  let m = Matrix.run Matrix.shipped in
  if not m.Matrix.honest then
    Alcotest.failf "shipped matrix dishonest:\n%s"
      (Format.asprintf "%a" Matrix.pp m);
  Alcotest.(check int) "every shipped cell passes"
    (List.length Matrix.shipped) m.Matrix.passed;
  Alcotest.(check string) "shipped JSON independent of job count"
    (Matrix.to_json (Matrix.run ~jobs:1 Matrix.shipped))
    (Matrix.to_json m)

let test_matrix_fuzz_no_engine_errors () =
  let cells = Matrix.random_cells ~seed:11 ~count:12 in
  Alcotest.(check int) "count honoured" 12 (List.length cells);
  let render c =
    Printf.sprintf "%s+%s" c.Matrix.algo c.Matrix.plan.Fault.label
  in
  Alcotest.(check (list string)) "cells reproducible from seed"
    (List.map render (Matrix.random_cells ~seed:11 ~count:12))
    (List.map render cells);
  let m = Matrix.run cells in
  List.iter
    (fun r ->
      if not r.Matrix.ok then
        Alcotest.failf "engine error on %s: %s" (render r.Matrix.cell)
          r.Matrix.outcome)
    m.Matrix.rows

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_validate;
    Alcotest.test_case "generate deterministic + valid" `Quick
      test_generate_deterministic;
    Alcotest.test_case "wrap name + spawn-time validation" `Quick
      test_wrap_name_and_validation;
    Alcotest.test_case "empty plan preserves state space" `Quick
      test_empty_plan_preserves_state_space;
    Alcotest.test_case "wrapped reprs deterministic" `Quick
      test_wrapped_reprs_deterministic;
    Alcotest.test_case "crash at rem benign (RME recovery)" `Quick
      test_crash_at_rem_benign;
    Alcotest.test_case "crash mid-protocol detected" `Quick
      test_crash_mid_protocol_detected;
    Alcotest.test_case "register faults detected" `Quick
      test_register_faults_detected;
    Alcotest.test_case "violation witness replays" `Quick
      test_mutex_violation_witness_replays;
    Alcotest.test_case "starvation burns fuel, partial replays" `Quick
      test_starve_out_of_fuel_replayable;
    Alcotest.test_case "faulty deadlock raises Stuck" `Quick
      test_stuck_on_faulty_deadlock;
    Alcotest.test_case "runner deadline partial replays" `Quick
      test_runner_deadline;
    Alcotest.test_case "model check deadline verdict" `Quick
      test_model_check_deadline;
    Alcotest.test_case "matrix quick cells honest + jobs-stable" `Quick
      test_matrix_quick_honest_and_deterministic;
    Alcotest.test_case "matrix shipped honest" `Slow test_matrix_shipped_honest;
    Alcotest.test_case "matrix fuzz: no engine errors" `Slow
      test_matrix_fuzz_no_engine_errors;
  ]
