open Lb_shmem
module C = Lb_core.Construct
module P = Lb_core.Permutation
module E = Lb_core.Encode
module D = Lb_core.Decode
module S = Lb_core.Signature
module L = Lb_core.Linearize

let ya = Lb_algos.Yang_anderson.algorithm
let bakery = Lb_algos.Bakery.algorithm

(* ----------------------------- Signature ----------------------------- *)

let test_signature_of_metastep () =
  let a = Lb_core.Metastep.create_arena () in
  let m = Lb_core.Metastep.new_write a ~reg:0 ~win:(Step.step 0 (Step.Write (0, 1))) in
  Lb_core.Metastep.add_write_step m (Step.step 1 (Step.Write (0, 2)));
  Lb_core.Metastep.add_read_step m (Step.step 2 (Step.Read 0));
  let s = S.of_metastep m in
  Alcotest.(check int) "writes incl winner" 2 s.S.writes;
  Alcotest.(check int) "reads" 1 s.S.reads;
  Alcotest.(check int) "prereads" 0 s.S.prereads;
  Alcotest.(check string) "paper notation" "PR0R1W2" (Format.asprintf "%a" S.pp s)

let test_signature_bits_positive () =
  List.iter
    (fun (pr, r, w) ->
      let s = { S.prereads = pr; reads = r; writes = w } in
      Alcotest.(check bool) "bits > 0" true (S.encoded_bits s > 0))
    [ (0, 0, 1); (3, 5, 2); (10, 100, 7) ]

(* ------------------------------ Encode ------------------------------- *)

let encode_of algo n pi =
  let c = C.run algo ~n pi in
  (c, E.encode c)

let test_cells_shape () =
  let c, e = encode_of ya 3 (P.identity 3) in
  Alcotest.(check int) "n columns" 3 (Array.length e.E.cells);
  Array.iteri
    (fun i column ->
      Alcotest.(check int)
        (Printf.sprintf "column %d length = chain length" i)
        (Array.length (C.metasteps_of c i))
        (Array.length column))
    e.E.cells

let test_cell_types_align () =
  (* every process's first cell is the try metastep: C; last is rem: C *)
  let _, e = encode_of bakery 3 (P.reverse 3) in
  Array.iter
    (fun column ->
      Alcotest.(check string) "first cell C" "C" (E.cell_to_string column.(0));
      Alcotest.(check string) "last cell C" "C"
        (E.cell_to_string column.(Array.length column - 1)))
    e.E.cells

let test_exactly_one_wsig_per_write_metastep () =
  let c, e = encode_of bakery 4 (P.identity 4) in
  let wsig = ref 0 and wm = ref 0 in
  Array.iter
    (Array.iter (function E.Cell_wsig _ -> incr wsig | _ -> ()))
    e.E.cells;
  Lb_core.Metastep.iter c.C.arena (fun m ->
      if m.Lb_core.Metastep.kind = Lb_core.Metastep.Write_meta then incr wm);
  Alcotest.(check int) "one signature per write metastep" !wm !wsig

let test_parse_roundtrip () =
  List.iter
    (fun pi ->
      let _, e = encode_of ya 4 pi in
      let cells = E.parse ~n:4 e.E.bits in
      Alcotest.(check bool) "cells roundtrip" true (cells = e.E.cells))
    (P.all 4)

let test_parse_garbage () =
  (* tag 7 is invalid *)
  match E.parse ~n:1 [| true; true; true |] with
  | _ -> Alcotest.fail "garbage parsed"
  | exception Invalid_argument _ -> ()

let test_ascii_form () =
  let _, e = encode_of ya 2 (P.identity 2) in
  let ascii = E.to_ascii e in
  Alcotest.(check bool) "has separators" true (Astring_contains.contains ascii "#");
  Alcotest.(check int) "two column terminators" 2
    (String.fold_left (fun acc ch -> if ch = '$' then acc + 1 else acc) 0 ascii);
  Alcotest.(check bool) "has signature" true (Astring_contains.contains ascii "W,PR")

let test_stats () =
  let c, e = encode_of bakery 3 (P.identity 3) in
  let st = E.stats c e in
  Alcotest.(check int) "total bits" (E.length_bits e) st.E.total_bits;
  Alcotest.(check bool) "some crit cells" true (st.E.crit_cells = 3 * 4);
  let cell_total =
    st.E.crit_cells + st.E.sr_cells + st.E.pr_cells + st.E.r_cells
    + st.E.w_cells + st.E.wsig_cells
  in
  let expected =
    Array.fold_left (fun acc col -> acc + Array.length col) 0 e.E.cells
  in
  Alcotest.(check int) "cells partitioned" expected cell_total

let test_encoding_linear_in_cost () =
  (* Theorem 6.2: |E_pi| <= c * C(alpha_pi); measure the constant over a
     family and require it bounded (it is ~7 bits/unit in practice) *)
  let worst = ref 0.0 in
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun n ->
          List.iter
            (fun pi ->
              let c = C.run algo ~n pi in
              let e = E.encode c in
              let cost =
                Lb_cost.State_change.cost algo ~n (L.execution c)
              in
              worst := Float.max !worst (float_of_int (E.length_bits e) /. float_of_int cost))
            [ P.identity n; P.reverse n ])
        [ 2; 4; 8; 16 ])
    [ ya; bakery ];
  Alcotest.(check bool) "bits/cost bounded by 12" true (!worst < 12.0)

(* ------------------------------ Decode ------------------------------- *)

let test_decode_equals_linearization () =
  List.iter
    (fun pi ->
      let c, e = encode_of ya 4 pi in
      let decoded = D.run_bits ya ~n:4 e.E.bits in
      let canonical = L.execution c in
      (* same per-process projections (Theorem 7.4: both linearize (M,⪯)) *)
      for i = 0 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "projection p%d" i)
          true
          (List.equal Step.equal
             (Execution.projection decoded i)
             (Execution.projection canonical i))
      done)
    (P.all 4)

let test_decode_does_not_know_pi () =
  (* decoding uses only bits: two different permutations give different
     decoded executions *)
  let _, e1 = encode_of ya 3 (P.identity 3) in
  let _, e2 = encode_of ya 3 (P.reverse 3) in
  let d1 = D.run_bits ya ~n:3 e1.E.bits in
  let d2 = D.run_bits ya ~n:3 e2.E.bits in
  Alcotest.(check bool) "different decodes" false (Execution.equal d1 d2);
  Alcotest.(check (list int)) "d1 order" [ 0; 1; 2 ] (Execution.crit_order d1);
  Alcotest.(check (list int)) "d2 order" [ 2; 1; 0 ] (Execution.crit_order d2)

let test_decode_injective_s4 () =
  let decodes =
    List.map
      (fun pi ->
        let _, e = encode_of ya 4 pi in
        Execution.fingerprint (D.run_bits ya ~n:4 e.E.bits))
      (P.all 4)
  in
  Alcotest.(check int) "24 distinct decodes" 24
    (List.length (List.sort_uniq compare decodes))

let test_decode_valid_execution () =
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun pi ->
          let _, e = encode_of algo 3 pi in
          let d = D.run_bits algo ~n:3 e.E.bits in
          ignore (Execution.replay algo ~n:3 d);
          match Lb_mutex.Checker.check ~n:3 d with
          | Ok () -> ()
          | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v))
        (P.all 3))
    [ ya; bakery; Lb_algos.Filter.algorithm ]

let test_decode_rejects_truncated () =
  let _, e = encode_of ya 2 (P.identity 2) in
  let truncated = Array.sub e.E.bits 0 (Array.length e.E.bits - 4) in
  match D.run_bits ya ~n:2 truncated with
  | _ -> Alcotest.fail "truncated input decoded"
  | exception (D.Decode_error _ | Invalid_argument _ | Lb_bitio.Bit_reader.Exhausted) -> ()

let test_decode_rejects_wrong_algo () =
  (* an encoding for bakery fed to the YA decoder must fail loudly *)
  let _, e = encode_of bakery 3 (P.identity 3) in
  match D.run_bits ya ~n:3 e.E.bits with
  | _ -> Alcotest.fail "cross-algorithm decode succeeded"
  | exception (D.Decode_error _ | Invalid_argument _ | System.Step_mismatch _) -> ()

let bit_flip_robustness =
  (* corrupting any single bit of E_pi must be detected: the decoder either
     raises, or its output fails to be the original linearization *)
  QCheck.Test.make ~name:"decoder detects single-bit corruption" ~count:80
    QCheck.(pair (int_range 1 5) (int_range 0 10_000))
    (fun (n, salt) ->
      let pi = P.random (Lb_util.Rng.create salt) n in
      let c, e = encode_of ya n pi in
      let original = L.execution c in
      let bits = Array.copy e.E.bits in
      let pos = salt mod Array.length bits in
      bits.(pos) <- not bits.(pos);
      match D.run_bits ya ~n bits with
      | exception
          ( D.Decode_error _ | Invalid_argument _ | System.Step_mismatch _
          | Lb_bitio.Bit_reader.Exhausted ) ->
        true
      | decoded ->
        (* decoding "succeeded": it must not reproduce alpha_pi *)
        not
          (List.for_all
             (fun i ->
               List.equal Step.equal
                 (Execution.projection decoded i)
                 (Execution.projection original i))
             (List.init n Fun.id)))

let test_ascii_roundtrip () =
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun pi ->
          let _, e = encode_of algo 4 pi in
          let cells = E.of_ascii (E.to_ascii e) in
          Alcotest.(check bool) "ascii roundtrip" true (cells = e.E.cells);
          (* the ASCII form is decodable, not just printable *)
          let d = D.run algo ~n:4 cells in
          Alcotest.(check (list int)) "decodes to pi"
            (Array.to_list (P.to_array pi))
            (Execution.crit_order d))
        [ P.identity 4; P.reverse 4 ])
    [ ya; bakery ]

let test_ascii_rejects_garbage () =
  List.iter
    (fun s ->
      match E.of_ascii s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Invalid_argument _ -> ())
    [ "C#"; "C$"; "X#$"; "W,PR1R2#$"; "C#W,PRxRyWz#$" ]

let scan_order_invariance =
  (* the decoder's output projections are invariant under the order in
     which the main loop polls processes (the nondeterminism Lemma 7.2
     tolerates) *)
  QCheck.Test.make ~name:"decode invariant under scan order" ~count:40
    QCheck.(pair (int_range 2 6) (int_range 0 100_000))
    (fun (n, salt) ->
      let pi = P.random (Lb_util.Rng.create salt) n in
      let _, e = encode_of ya n pi in
      let reference = D.run ya ~n e.E.cells in
      let scan = P.to_array (P.random (Lb_util.Rng.create (salt + 1)) n) in
      let other = D.run ~scan_order:scan ya ~n e.E.cells in
      List.for_all
        (fun i ->
          List.equal Step.equal
            (Execution.projection reference i)
            (Execution.projection other i))
        (List.init n Fun.id))

let test_trace_events () =
  let _, e = encode_of ya 2 (P.identity 2) in
  let events = ref [] in
  ignore (D.run ~trace:(fun ev -> events := ev :: !events) ya ~n:2 e.E.cells);
  let events = List.rev !events in
  let count p = List.length (List.filter p events) in
  (* every cell is consumed exactly once *)
  let total_cells =
    Array.fold_left (fun acc col -> acc + Array.length col) 0 e.E.cells
  in
  Alcotest.(check int) "cells consumed" total_cells
    (count (function D.Cell_consumed _ -> true | _ -> false));
  (* one Fired event per write metastep (= per signature install) *)
  Alcotest.(check int) "fired = signatures"
    (count (function D.Signature_installed _ -> true | _ -> false))
    (count (function D.Fired _ -> true | _ -> false));
  (* events render *)
  List.iter
    (fun ev -> Alcotest.(check bool) "prints" true
        (String.length (Format.asprintf "%a" D.pp_event ev) > 0))
    events

let suite =
  [
    QCheck_alcotest.to_alcotest bit_flip_robustness;
    QCheck_alcotest.to_alcotest scan_order_invariance;
    Alcotest.test_case "ascii roundtrip + decode" `Quick test_ascii_roundtrip;
    Alcotest.test_case "ascii rejects garbage" `Quick test_ascii_rejects_garbage;
    Alcotest.test_case "decoder trace events" `Quick test_trace_events;
    Alcotest.test_case "signature of metastep" `Quick test_signature_of_metastep;
    Alcotest.test_case "signature bits" `Quick test_signature_bits_positive;
    Alcotest.test_case "cells shape" `Quick test_cells_shape;
    Alcotest.test_case "cell types align" `Quick test_cell_types_align;
    Alcotest.test_case "one wsig per write metastep" `Quick test_exactly_one_wsig_per_write_metastep;
    Alcotest.test_case "parse roundtrip (all S4)" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse garbage" `Quick test_parse_garbage;
    Alcotest.test_case "ascii form" `Quick test_ascii_form;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "encoding linear in cost" `Quick test_encoding_linear_in_cost;
    Alcotest.test_case "decode = linearization (all S4)" `Quick test_decode_equals_linearization;
    Alcotest.test_case "decode independent of pi" `Quick test_decode_does_not_know_pi;
    Alcotest.test_case "decode injective on S4" `Quick test_decode_injective_s4;
    Alcotest.test_case "decode is valid execution" `Quick test_decode_valid_execution;
    Alcotest.test_case "decode rejects truncated" `Quick test_decode_rejects_truncated;
    Alcotest.test_case "decode rejects wrong algorithm" `Quick test_decode_rejects_wrong_algo;
  ]
