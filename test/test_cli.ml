(* End-to-end tests of the mutexlb binary itself: every subcommand runs,
   exit codes carry the verdicts, and the save/decode round trip works
   through real files. The binary is a declared dune dependency, available
   relative to the test's working directory (_build/default/test). *)

let exe = "../bin/mutexlb.exe"

let run_cmd args =
  let out = Filename.temp_file "mutexlb_cli" ".out" in
  let status =
    Sys.command (Printf.sprintf "%s %s > %s 2>&1" exe args (Filename.quote out))
  in
  let content = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (status, content)

let check_runs label args expect =
  let status, content = run_cmd args in
  Alcotest.(check int) (label ^ " exit code") expect status;
  (status, content)

let test_list () =
  let _, out = check_runs "list" "list" 0 in
  Alcotest.(check bool) "mentions ya" true
    (Astring_contains.contains out "yang_anderson");
  Alcotest.(check bool) "mentions broken" true
    (Astring_contains.contains out "broken_spinlock")

let test_run () =
  let _, out = check_runs "run" "run -a bakery -n 3 -s rr" 0 in
  Alcotest.(check bool) "has costs" true (Astring_contains.contains out "sc=")

let test_check_verified () =
  ignore (check_runs "check ok" "check -a peterson2 -n 2" 0)

let test_check_broken () =
  let _, out = check_runs "check broken" "check -a broken_spinlock -n 2" 1 in
  Alcotest.(check bool) "witness shown" true
    (Astring_contains.contains out "MUTEX VIOLATION")

let test_check_flat_ya () =
  let _, out = check_runs "check flat ya" "check -a yang_anderson_flat -n 3" 1 in
  Alcotest.(check bool) "deadlock found" true
    (Astring_contains.contains out "DEADLOCK")

let test_pipeline_and_decode () =
  let bits = Filename.temp_file "mutexlb_cli" ".bits" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bits)
    (fun () ->
      let _, out =
        check_runs "pipeline"
          (Printf.sprintf "pipeline -a yang_anderson -n 4 -p 2,0,3,1 --save %s" bits)
          0
      in
      Alcotest.(check bool) "checks passed" true
        (Astring_contains.contains out "all passed");
      let _, out = check_runs "decode" (Printf.sprintf "decode %s" bits) 0 in
      Alcotest.(check bool) "same enter order" true
        (Astring_contains.contains out "2 0 3 1"))

let test_construct_dot () =
  let dot = Filename.temp_file "mutexlb_cli" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove dot)
    (fun () ->
      ignore
        (check_runs "construct"
           (Printf.sprintf "construct -a bakery -n 3 -p 1,2,0 --dot %s" dot)
           0);
      let content = In_channel.with_open_text dot In_channel.input_all in
      Alcotest.(check bool) "dot file" true
        (Astring_contains.contains content "digraph"))

let test_certify () =
  let _, out = check_runs "certify" "certify -a yang_anderson -n 4 --perms 24" 0 in
  Alcotest.(check bool) "distinct" true
    (Astring_contains.contains out "distinct decodes: true")

let test_certify_zero_perms () =
  let status, out = run_cmd "certify -a yang_anderson -n 4 --perms 0" in
  Alcotest.(check int) "exit 2" 2 status;
  Alcotest.(check bool) "clean error, not a crash" true
    (Astring_contains.contains out "--perms must be >= 1")

let test_certify_jobs_identical () =
  (* the parallel sweep must emit byte-identical certificates *)
  let _, seq = check_runs "certify jobs=1"
      "certify -a yang_anderson -n 6 --seed 7 --perms 24 --jobs 1" 0
  in
  let _, par = check_runs "certify jobs=4"
      "certify -a yang_anderson -n 6 --seed 7 --perms 24 --jobs 4" 0
  in
  Alcotest.(check string) "identical output" seq par

let test_bad_jobs () =
  let status, out = run_cmd "certify -a yang_anderson -n 4 --perms 6 --jobs 0" in
  Alcotest.(check int) "exit 2" 2 status;
  Alcotest.(check bool) "clean error" true
    (Astring_contains.contains out "--jobs must be >= 1")

let test_check_multi_algo () =
  let _, out = check_runs "check multi" "check -a peterson2,tas -n 2 --jobs 2" 0 in
  Alcotest.(check bool) "peterson2 row" true (Astring_contains.contains out "peterson2");
  Alcotest.(check bool) "tas row" true (Astring_contains.contains out "tas");
  (* a violation anywhere in the sweep drives the exit code *)
  let status, out = run_cmd "check -a peterson2,broken_spinlock -n 2 --jobs 2" in
  Alcotest.(check int) "violation exit" 1 status;
  Alcotest.(check bool) "witness shown" true
    (Astring_contains.contains out "MUTEX VIOLATION")

let test_workload () =
  let _, out =
    check_runs "workload" "workload -a ticket -n 4 --pattern staggered:50" 0
  in
  Alcotest.(check bool) "per-section" true
    (Astring_contains.contains out "per section")

let test_adversary () =
  let _, out = check_runs "adversary" "adversary -a bakery -n 4 --tries 4" 0 in
  Alcotest.(check bool) "best" true (Astring_contains.contains out "adversary best")

let test_experiments_only () =
  let _, out = check_runs "experiments" "experiments --only E12" 0 in
  Alcotest.(check bool) "table" true (Astring_contains.contains out "Burns-Lynch")

let test_unknown_algo () =
  let status, _ = run_cmd "run -a nonsense -n 2" in
  Alcotest.(check int) "exit 2" 2 status

let test_bad_perm () =
  let status, _ = run_cmd "pipeline -a bakery -n 3 -p 0,1" in
  Alcotest.(check int) "exit 2" 2 status

let test_lint_registry_clean () =
  let _, out = check_runs "lint" "lint --sizes 2,3 -j 2" 0 in
  Alcotest.(check bool) "clean" true (Astring_contains.contains out "lint: clean");
  Alcotest.(check bool) "expected findings marked" true
    (Astring_contains.contains out "[expected]")

let test_lint_no_allowlist_fails () =
  let status, out =
    run_cmd "lint -a broken_spinlock --sizes 2 --no-allowlist -v"
  in
  Alcotest.(check int) "exit 1" 1 status;
  Alcotest.(check bool) "racy rule" true
    (Astring_contains.contains out "register-discipline/racy-test-then-set");
  Alcotest.(check bool) "witness printed" true
    (Astring_contains.contains out "witness p")

let test_lint_json () =
  let _, out = check_runs "lint json" "lint -a peterson2 --sizes 2 --json" 0 in
  Alcotest.(check bool) "json clean" true
    (Astring_contains.contains out "\"clean\":true")

let test_lint_usage_errors () =
  let status, _ = run_cmd "lint -a nonsense" in
  Alcotest.(check int) "unknown algo exit 2" 2 status;
  let status, _ = run_cmd "lint --sizes banana" in
  Alcotest.(check int) "bad sizes exit 2" 2 status;
  let status, _ = run_cmd "lint --max-nodes 0" in
  Alcotest.(check int) "bad max-nodes exit 2" 2 status

let test_lint_rules_subset () =
  (* only the register-discipline family: broken_spinlock still fails
     through it, while a kind-honesty-only run has nothing to say *)
  let status, out =
    run_cmd
      "lint -a broken_spinlock --sizes 2 --no-allowlist --rules \
       register-discipline"
  in
  Alcotest.(check int) "discipline subset exit 1" 1 status;
  Alcotest.(check bool) "racy rule found" true
    (Astring_contains.contains out "racy-test-then-set");
  ignore
    (check_runs "honesty subset"
       "lint -a broken_spinlock --sizes 2 --no-allowlist --rules kind-honesty"
       0)

let test_lint_rules_unknown () =
  let status, out = run_cmd "lint --rules register-discipline,wibble" in
  Alcotest.(check int) "unknown rule exit 2" 2 status;
  Alcotest.(check bool) "offender named" true
    (Astring_contains.contains out "wibble");
  Alcotest.(check bool) "valid families listed" true
    (Astring_contains.contains out "repr-soundness")

let test_format_versions () =
  let _, lint = check_runs "lint fv" "lint -a peterson2 --sizes 2 --json" 0 in
  Alcotest.(check bool) "lint format_version" true
    (Astring_contains.contains lint "\"format_version\":1");
  let _, chaos = check_runs "chaos fv" "chaos --json" 0 in
  Alcotest.(check bool) "chaos format_version" true
    (Astring_contains.contains chaos "\"format_version\": 1")

let test_list_json () =
  let _, out = check_runs "list --json" "list --json" 0 in
  Alcotest.(check bool) "array" true (String.length out > 0 && out.[0] = '[');
  Alcotest.(check bool) "ya entry" true
    (Astring_contains.contains out "\"name\": \"yang_anderson\"");
  Alcotest.(check bool) "rmw flag" true
    (Astring_contains.contains out "\"rmw\": true");
  Alcotest.(check bool) "register count" true
    (Astring_contains.contains out "\"register_count\"");
  Alcotest.(check bool) "faulty flag" true
    (Astring_contains.contains out "\"faulty\": true");
  Alcotest.(check bool) "expected findings" true
    (Astring_contains.contains out
       "\"expected_findings\": [\"register-discipline/racy-test-then-set\"]");
  Alcotest.(check bool) "expected survivors" true
    (Astring_contains.contains out "\"expected_survivors\"")

(* The mutation harness end to end: a restricted clean campaign exits 0,
   --no-allowlist resurfaces the triaged survivors as failures, the JSON
   report is byte-identical at any job count, and flag abuse exits 2. *)
let test_mutate_smoke () =
  let _, out =
    check_runs "mutate clean"
      "mutate -a peterson2 --sizes 2 --ops guard_flip,drop_write,domain_shrink"
      0
  in
  Alcotest.(check bool) "score line" true
    (Astring_contains.contains out "mutation score");
  Alcotest.(check bool) "a lint kill names its rule" true
    (Astring_contains.contains out
       "killed @ lint: register-discipline/domain-violation")

let test_mutate_no_allowlist () =
  let status, out =
    run_cmd "mutate -a dekker --sizes 2 --ops dup_write --no-allowlist"
  in
  Alcotest.(check int) "untriaged survivor exit 1" 1 status;
  Alcotest.(check bool) "survivor marked" true
    (Astring_contains.contains out "SURVIVED (UNTRIAGED)");
  (* with the registry allowlist the same campaign is clean *)
  let _, out = check_runs "triaged" "mutate -a dekker --sizes 2 --ops dup_write" 0 in
  Alcotest.(check bool) "triage reason shown" true
    (Astring_contains.contains out "survived (triaged:")

let test_mutate_jobs_identical () =
  let args = "mutate -a peterson2,tas --sizes 2 --json" in
  let _, seq = check_runs "mutate seq" (args ^ " --jobs 1") 0 in
  let _, par = check_runs "mutate par" (args ^ " --jobs 4") 0 in
  Alcotest.(check string) "byte-identical reports" seq par;
  Alcotest.(check bool) "format_version" true
    (Astring_contains.contains seq "\"format_version\": 1")

let test_mutate_usage_errors () =
  let status, out = run_cmd "mutate --ops wibble" in
  Alcotest.(check int) "unknown op exit 2" 2 status;
  Alcotest.(check bool) "valid ops listed" true
    (Astring_contains.contains out "guard_flip");
  let status, _ = run_cmd "mutate -a nonsense" in
  Alcotest.(check int) "unknown algo exit 2" 2 status;
  let status, _ = run_cmd "mutate --sizes 0" in
  Alcotest.(check int) "bad sizes exit 2" 2 status;
  let status, _ = run_cmd "mutate --rounds 0" in
  Alcotest.(check int) "bad rounds exit 2" 2 status

(* Satellite regression: --perms K with K > n! claimed K distinct
   permutations when only n! exist; it must clamp with a warning and go
   exhaustive *)
let test_certify_perms_clamp () =
  let _, out =
    check_runs "certify clamp" "certify -a yang_anderson -n 3 --perms 24" 0
  in
  Alcotest.(check bool) "warns" true
    (Astring_contains.contains out "exceeds n! = 6");
  Alcotest.(check bool) "goes exhaustive" true
    (Astring_contains.contains out "(6 perms, exhaustive)")

let with_temp_dir f =
  let dir = Filename.temp_file "mutexlb_cli_store" "" in
  Sys.remove dir;
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_certify_store_warm () =
  with_temp_dir (fun dir ->
      let args =
        Printf.sprintf "certify -a yang_anderson -n 4 --perms 24 --store %s" dir
      in
      let _, cold = check_runs "certify cold" args 0 in
      Alcotest.(check bool) "cold computes" true
        (Astring_contains.contains cold "24 computed");
      let _, warm = check_runs "certify warm" args 0 in
      Alcotest.(check bool) "warm is all hits" true
        (Astring_contains.contains warm "24 hits, 0 computed, 0 failed (100.0% hits)");
      (* same certificate body, modulo the hit-rate lines *)
      let cert_of out =
        List.filter
          (fun l -> not (Astring_contains.contains l "store"
                         || Astring_contains.contains l "certify:"
                         || Astring_contains.contains l "manifest"))
          (String.split_on_char '\n' out)
      in
      Alcotest.(check (list string)) "certificate identical" (cert_of cold)
        (cert_of warm);
      (* store maintenance commands over the populated store *)
      let _, out = check_runs "store stat" (Printf.sprintf "store stat %s" dir) 0 in
      Alcotest.(check bool) "stat counts" true
        (Astring_contains.contains out "entries        24");
      let _, out = check_runs "store verify" (Printf.sprintf "store verify %s" dir) 0 in
      Alcotest.(check bool) "verify ok" true
        (Astring_contains.contains out "24 entries ok, 0 damaged");
      let _, out = check_runs "store gc" (Printf.sprintf "store gc %s --dry-run" dir) 0 in
      Alcotest.(check bool) "gc keeps" true
        (Astring_contains.contains out "24 kept, 0 would be dropped");
      (* corrupt one object: verify exits 1 and names the file; a fresh
         certify run transparently recomputes it *)
      let objects = Filename.concat dir "objects" in
      let shard = Filename.concat objects (Sys.readdir objects).(0) in
      let victim = Filename.concat shard (Sys.readdir shard).(0) in
      Out_channel.with_open_bin victim (fun oc ->
          Out_channel.output_string oc "mutexlb-store-entry 1\ngarbage");
      let status, out = run_cmd (Printf.sprintf "store verify %s" dir) in
      Alcotest.(check int) "verify fails" 1 status;
      Alcotest.(check bool) "damage reported" true
        (Astring_contains.contains out "1 damaged");
      let _, out = check_runs "certify heals" args 0 in
      Alcotest.(check bool) "one recompute" true
        (Astring_contains.contains out "23 hits, 1 computed");
      ignore (check_runs "verify healed" (Printf.sprintf "store verify %s" dir) 0))

let test_certify_store_events () =
  with_temp_dir (fun dir ->
      let log = Filename.temp_file "mutexlb_cli" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove log)
        (fun () ->
          ignore
            (check_runs "certify events"
               (Printf.sprintf
                  "certify -a yang_anderson -n 3 --perms 6 --store %s --events %s"
                  dir log)
               0);
          let content = In_channel.with_open_text log In_channel.input_all in
          Alcotest.(check bool) "start event" true
            (Astring_contains.contains content "\"start\"");
          Alcotest.(check bool) "finished event" true
            (Astring_contains.contains content "\"finished\"")))

let test_store_flags_require_store () =
  let status, out = run_cmd "certify -a yang_anderson -n 3 --perms 6 --resume" in
  Alcotest.(check int) "resume exit 2" 2 status;
  Alcotest.(check bool) "clean error" true
    (Astring_contains.contains out "add --store DIR");
  let status, _ = run_cmd "certify -a yang_anderson -n 3 --perms 6 --save-traces" in
  Alcotest.(check int) "save-traces exit 2" 2 status;
  let status, _ = run_cmd "experiments --only E12 --resume" in
  Alcotest.(check int) "experiments resume exit 2" 2 status

let test_certify_store_quarantine () =
  with_temp_dir (fun dir ->
      (* without --resume the first pipeline failure is fatal (nonzero),
         with it the sweep completes and exits 1 with a digest *)
      let status, out =
        run_cmd
          (Printf.sprintf
             "certify -a broken_spinlock -n 3 --perms 6 --store %s --resume" dir)
      in
      Alcotest.(check int) "quarantine exit 1" 1 status;
      Alcotest.(check bool) "digest" true
        (Astring_contains.contains out "failure digest");
      (* quarantine reasons carry the typed Check_failed stage prefix *)
      Alcotest.(check bool) "reason shown" true
        (Astring_contains.contains out "decoded: mutual exclusion"))

let test_experiments_store () =
  with_temp_dir (fun dir ->
      (* E2 at its test sizes routes its sweeps through the store; a
         second run must produce the identical table from cache *)
      let args = Printf.sprintf "experiments --only E2 --store %s" dir in
      let _, cold = check_runs "experiments cold" args 0 in
      let _, warm = check_runs "experiments warm" args 0 in
      Alcotest.(check string) "tables identical" cold warm;
      let _, out = check_runs "store populated" (Printf.sprintf "store stat %s" dir) 0 in
      Alcotest.(check bool) "has entries" true
        (not (Astring_contains.contains out "entries        0 ")))

let test_store_gc_lease () =
  with_temp_dir (fun dir ->
      ignore
        (check_runs "populate"
           (Printf.sprintf "certify -a yang_anderson -n 3 --store %s" dir)
           0);
      (* plant a live lease — this test runner's own pid, so not stale *)
      let locks = Filename.concat dir "locks" in
      (try Unix.mkdir locks 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let lease = Filename.concat locks "writer.lease" in
      Out_channel.with_open_bin lease (fun oc ->
          Out_channel.output_string oc
            (Printf.sprintf
               "pid %d\nhost %s\npurpose sweep\nsince %.3f\ntoken t\n"
               (Unix.getpid ()) (Unix.gethostname ()) (Unix.gettimeofday ())));
      let status, out = run_cmd (Printf.sprintf "store gc %s" dir) in
      Alcotest.(check int) "gc refused" 1 status;
      Alcotest.(check bool) "named refusal" true
        (Astring_contains.contains out "refused");
      Alcotest.(check bool) "suggests the overrides" true
        (Astring_contains.contains out "--force");
      let _, out =
        check_runs "gc --force" (Printf.sprintf "store gc %s --force" dir) 0
      in
      Alcotest.(check bool) "force collects" true
        (Astring_contains.contains out "6 kept");
      Sys.remove lease)

let test_certify_connect_usage () =
  with_temp_dir (fun dir ->
      let status, out =
        run_cmd
          (Printf.sprintf
             "certify -a yang_anderson -n 3 --connect 1 --store %s" dir)
      in
      Alcotest.(check int) "exclusive flags" 2 status;
      Alcotest.(check bool) "says exclusive" true
        (Astring_contains.contains out "exclusive"));
  (* nothing listens on port 1: unreachable server is exit 3 *)
  let status, out = run_cmd "certify -a yang_anderson -n 3 --connect 1" in
  Alcotest.(check int) "unreachable" 3 status;
  Alcotest.(check bool) "names the server" true
    (Astring_contains.contains out "cannot reach")

(* the pipeline-family subcommands refuse RMW algorithms up front with a
   usage error; run/check still accept them *)
let test_rmw_gate () =
  let status, out = run_cmd "pipeline -a tas -n 2" in
  Alcotest.(check int) "pipeline refuses" 2 status;
  Alcotest.(check bool) "names the rule" true
    (Astring_contains.contains out "kind-honesty/undeclared-rmw");
  let status, _ = run_cmd "construct -a ticket -n 3" in
  Alcotest.(check int) "construct refuses" 2 status;
  let status, _ = run_cmd "certify -a mcs -n 3 --perms 2" in
  Alcotest.(check int) "certify refuses" 2 status;
  ignore (check_runs "run still accepts rmw" "run -a tas -n 2" 0)

let suite =
  [
    Alcotest.test_case "list" `Quick test_list;
    Alcotest.test_case "run" `Quick test_run;
    Alcotest.test_case "check verified" `Quick test_check_verified;
    Alcotest.test_case "check broken" `Quick test_check_broken;
    Alcotest.test_case "check flat ya" `Slow test_check_flat_ya;
    Alcotest.test_case "pipeline + decode roundtrip" `Quick test_pipeline_and_decode;
    Alcotest.test_case "construct --dot" `Quick test_construct_dot;
    Alcotest.test_case "certify" `Quick test_certify;
    Alcotest.test_case "certify --perms 0" `Quick test_certify_zero_perms;
    Alcotest.test_case "certify --jobs identical" `Quick test_certify_jobs_identical;
    Alcotest.test_case "bad --jobs" `Quick test_bad_jobs;
    Alcotest.test_case "check multi-algo sweep" `Quick test_check_multi_algo;
    Alcotest.test_case "workload" `Quick test_workload;
    Alcotest.test_case "adversary" `Quick test_adversary;
    Alcotest.test_case "experiments --only" `Quick test_experiments_only;
    Alcotest.test_case "unknown algorithm" `Quick test_unknown_algo;
    Alcotest.test_case "bad permutation" `Quick test_bad_perm;
    Alcotest.test_case "lint registry clean" `Slow test_lint_registry_clean;
    Alcotest.test_case "lint --no-allowlist fails" `Quick
      test_lint_no_allowlist_fails;
    Alcotest.test_case "lint --json" `Quick test_lint_json;
    Alcotest.test_case "lint usage errors" `Quick test_lint_usage_errors;
    Alcotest.test_case "lint --rules subset" `Quick test_lint_rules_subset;
    Alcotest.test_case "lint --rules unknown" `Quick test_lint_rules_unknown;
    Alcotest.test_case "format_version in reports" `Quick test_format_versions;
    Alcotest.test_case "mutate smoke" `Quick test_mutate_smoke;
    Alcotest.test_case "mutate --no-allowlist" `Slow test_mutate_no_allowlist;
    Alcotest.test_case "mutate --jobs identical" `Quick
      test_mutate_jobs_identical;
    Alcotest.test_case "mutate usage errors" `Quick test_mutate_usage_errors;
    Alcotest.test_case "rmw gate on pipeline commands" `Quick test_rmw_gate;
    Alcotest.test_case "list --json" `Quick test_list_json;
    Alcotest.test_case "certify --perms clamp" `Quick test_certify_perms_clamp;
    Alcotest.test_case "certify --store warm + maintenance" `Quick
      test_certify_store_warm;
    Alcotest.test_case "certify --store --events" `Quick test_certify_store_events;
    Alcotest.test_case "store flags require --store" `Quick
      test_store_flags_require_store;
    Alcotest.test_case "store gc lease refusal" `Quick test_store_gc_lease;
    Alcotest.test_case "certify --connect usage" `Quick
      test_certify_connect_usage;
    Alcotest.test_case "certify --store quarantine" `Quick
      test_certify_store_quarantine;
    Alcotest.test_case "experiments --store" `Slow test_experiments_store;
  ]
