(* End-to-end tests of the mutexlb binary itself: every subcommand runs,
   exit codes carry the verdicts, and the save/decode round trip works
   through real files. The binary is a declared dune dependency, available
   relative to the test's working directory (_build/default/test). *)

let exe = "../bin/mutexlb.exe"

let run_cmd args =
  let out = Filename.temp_file "mutexlb_cli" ".out" in
  let status =
    Sys.command (Printf.sprintf "%s %s > %s 2>&1" exe args (Filename.quote out))
  in
  let content = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (status, content)

let check_runs label args expect =
  let status, content = run_cmd args in
  Alcotest.(check int) (label ^ " exit code") expect status;
  (status, content)

let test_list () =
  let _, out = check_runs "list" "list" 0 in
  Alcotest.(check bool) "mentions ya" true
    (Astring_contains.contains out "yang_anderson");
  Alcotest.(check bool) "mentions broken" true
    (Astring_contains.contains out "broken_spinlock")

let test_run () =
  let _, out = check_runs "run" "run -a bakery -n 3 -s rr" 0 in
  Alcotest.(check bool) "has costs" true (Astring_contains.contains out "sc=")

let test_check_verified () =
  ignore (check_runs "check ok" "check -a peterson2 -n 2" 0)

let test_check_broken () =
  let _, out = check_runs "check broken" "check -a broken_spinlock -n 2" 1 in
  Alcotest.(check bool) "witness shown" true
    (Astring_contains.contains out "MUTEX VIOLATION")

let test_check_flat_ya () =
  let _, out = check_runs "check flat ya" "check -a yang_anderson_flat -n 3" 1 in
  Alcotest.(check bool) "deadlock found" true
    (Astring_contains.contains out "DEADLOCK")

let test_pipeline_and_decode () =
  let bits = Filename.temp_file "mutexlb_cli" ".bits" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bits)
    (fun () ->
      let _, out =
        check_runs "pipeline"
          (Printf.sprintf "pipeline -a yang_anderson -n 4 -p 2,0,3,1 --save %s" bits)
          0
      in
      Alcotest.(check bool) "checks passed" true
        (Astring_contains.contains out "all passed");
      let _, out = check_runs "decode" (Printf.sprintf "decode %s" bits) 0 in
      Alcotest.(check bool) "same enter order" true
        (Astring_contains.contains out "2 0 3 1"))

let test_construct_dot () =
  let dot = Filename.temp_file "mutexlb_cli" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove dot)
    (fun () ->
      ignore
        (check_runs "construct"
           (Printf.sprintf "construct -a bakery -n 3 -p 1,2,0 --dot %s" dot)
           0);
      let content = In_channel.with_open_text dot In_channel.input_all in
      Alcotest.(check bool) "dot file" true
        (Astring_contains.contains content "digraph"))

let test_certify () =
  let _, out = check_runs "certify" "certify -a yang_anderson -n 4 --perms 24" 0 in
  Alcotest.(check bool) "distinct" true
    (Astring_contains.contains out "distinct decodes: true")

let test_certify_zero_perms () =
  let status, out = run_cmd "certify -a yang_anderson -n 4 --perms 0" in
  Alcotest.(check int) "exit 2" 2 status;
  Alcotest.(check bool) "clean error, not a crash" true
    (Astring_contains.contains out "--perms must be >= 1")

let test_certify_jobs_identical () =
  (* the parallel sweep must emit byte-identical certificates *)
  let _, seq = check_runs "certify jobs=1"
      "certify -a yang_anderson -n 6 --seed 7 --perms 24 --jobs 1" 0
  in
  let _, par = check_runs "certify jobs=4"
      "certify -a yang_anderson -n 6 --seed 7 --perms 24 --jobs 4" 0
  in
  Alcotest.(check string) "identical output" seq par

let test_bad_jobs () =
  let status, out = run_cmd "certify -a yang_anderson -n 4 --perms 6 --jobs 0" in
  Alcotest.(check int) "exit 2" 2 status;
  Alcotest.(check bool) "clean error" true
    (Astring_contains.contains out "--jobs must be >= 1")

let test_check_multi_algo () =
  let _, out = check_runs "check multi" "check -a peterson2,tas -n 2 --jobs 2" 0 in
  Alcotest.(check bool) "peterson2 row" true (Astring_contains.contains out "peterson2");
  Alcotest.(check bool) "tas row" true (Astring_contains.contains out "tas");
  (* a violation anywhere in the sweep drives the exit code *)
  let status, out = run_cmd "check -a peterson2,broken_spinlock -n 2 --jobs 2" in
  Alcotest.(check int) "violation exit" 1 status;
  Alcotest.(check bool) "witness shown" true
    (Astring_contains.contains out "MUTEX VIOLATION")

let test_workload () =
  let _, out =
    check_runs "workload" "workload -a ticket -n 4 --pattern staggered:50" 0
  in
  Alcotest.(check bool) "per-section" true
    (Astring_contains.contains out "per section")

let test_adversary () =
  let _, out = check_runs "adversary" "adversary -a bakery -n 4 --tries 4" 0 in
  Alcotest.(check bool) "best" true (Astring_contains.contains out "adversary best")

let test_experiments_only () =
  let _, out = check_runs "experiments" "experiments --only E12" 0 in
  Alcotest.(check bool) "table" true (Astring_contains.contains out "Burns-Lynch")

let test_unknown_algo () =
  let status, _ = run_cmd "run -a nonsense -n 2" in
  Alcotest.(check int) "exit 2" 2 status

let test_bad_perm () =
  let status, _ = run_cmd "pipeline -a bakery -n 3 -p 0,1" in
  Alcotest.(check int) "exit 2" 2 status

let test_lint_registry_clean () =
  let _, out = check_runs "lint" "lint --sizes 2,3 -j 2" 0 in
  Alcotest.(check bool) "clean" true (Astring_contains.contains out "lint: clean");
  Alcotest.(check bool) "expected findings marked" true
    (Astring_contains.contains out "[expected]")

let test_lint_no_allowlist_fails () =
  let status, out =
    run_cmd "lint -a broken_spinlock --sizes 2 --no-allowlist -v"
  in
  Alcotest.(check int) "exit 1" 1 status;
  Alcotest.(check bool) "racy rule" true
    (Astring_contains.contains out "register-discipline/racy-test-then-set");
  Alcotest.(check bool) "witness printed" true
    (Astring_contains.contains out "witness p")

let test_lint_json () =
  let _, out = check_runs "lint json" "lint -a peterson2 --sizes 2 --json" 0 in
  Alcotest.(check bool) "json clean" true
    (Astring_contains.contains out "\"clean\":true")

let test_lint_usage_errors () =
  let status, _ = run_cmd "lint -a nonsense" in
  Alcotest.(check int) "unknown algo exit 2" 2 status;
  let status, _ = run_cmd "lint --sizes banana" in
  Alcotest.(check int) "bad sizes exit 2" 2 status;
  let status, _ = run_cmd "lint --max-nodes 0" in
  Alcotest.(check int) "bad max-nodes exit 2" 2 status

(* the pipeline-family subcommands refuse RMW algorithms up front with a
   usage error; run/check still accept them *)
let test_rmw_gate () =
  let status, out = run_cmd "pipeline -a tas -n 2" in
  Alcotest.(check int) "pipeline refuses" 2 status;
  Alcotest.(check bool) "names the rule" true
    (Astring_contains.contains out "kind-honesty/undeclared-rmw");
  let status, _ = run_cmd "construct -a ticket -n 3" in
  Alcotest.(check int) "construct refuses" 2 status;
  let status, _ = run_cmd "certify -a mcs -n 3 --perms 2" in
  Alcotest.(check int) "certify refuses" 2 status;
  ignore (check_runs "run still accepts rmw" "run -a tas -n 2" 0)

let suite =
  [
    Alcotest.test_case "list" `Quick test_list;
    Alcotest.test_case "run" `Quick test_run;
    Alcotest.test_case "check verified" `Quick test_check_verified;
    Alcotest.test_case "check broken" `Quick test_check_broken;
    Alcotest.test_case "check flat ya" `Slow test_check_flat_ya;
    Alcotest.test_case "pipeline + decode roundtrip" `Quick test_pipeline_and_decode;
    Alcotest.test_case "construct --dot" `Quick test_construct_dot;
    Alcotest.test_case "certify" `Quick test_certify;
    Alcotest.test_case "certify --perms 0" `Quick test_certify_zero_perms;
    Alcotest.test_case "certify --jobs identical" `Quick test_certify_jobs_identical;
    Alcotest.test_case "bad --jobs" `Quick test_bad_jobs;
    Alcotest.test_case "check multi-algo sweep" `Quick test_check_multi_algo;
    Alcotest.test_case "workload" `Quick test_workload;
    Alcotest.test_case "adversary" `Quick test_adversary;
    Alcotest.test_case "experiments --only" `Quick test_experiments_only;
    Alcotest.test_case "unknown algorithm" `Quick test_unknown_algo;
    Alcotest.test_case "bad permutation" `Quick test_bad_perm;
    Alcotest.test_case "lint registry clean" `Slow test_lint_registry_clean;
    Alcotest.test_case "lint --no-allowlist fails" `Quick
      test_lint_no_allowlist_fails;
    Alcotest.test_case "lint --json" `Quick test_lint_json;
    Alcotest.test_case "lint usage errors" `Quick test_lint_usage_errors;
    Alcotest.test_case "rmw gate on pipeline commands" `Quick test_rmw_gate;
  ]
