open Lb_shmem

let step = Step.step
let ya = Lb_algos.Yang_anderson.algorithm
let broken = Lb_algos.Broken_spinlock.algorithm

(* ------------------------------ Checker ------------------------------ *)

let test_checker_accepts_valid () =
  let exec = (Lb_mutex.Canonical.run ya ~n:3).Lb_mutex.Canonical.exec in
  (match Lb_mutex.Checker.check ~n:3 exec with
  | Ok () -> ()
  | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v));
  match Lb_mutex.Checker.check_algorithm ya ~n:3 exec with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "check_algorithm rejected a canonical run"

let test_checker_rejects_double_enter () =
  let exec =
    Execution.of_steps
      [
        step 0 (Step.Crit Step.Try);
        step 1 (Step.Crit Step.Try);
        step 0 (Step.Crit Step.Enter);
        step 1 (Step.Crit Step.Enter);
      ]
  in
  match Lb_mutex.Checker.check ~n:2 exec with
  | Error (Lb_mutex.Checker.Mutex_violated { a = 0; b = 1; at = 3 }) -> ()
  | Error v -> Alcotest.failf "wrong violation: %s" (Lb_mutex.Checker.violation_to_string v)
  | Ok () -> Alcotest.fail "accepted a mutex violation"

let test_checker_rejects_ill_formed () =
  let exec =
    Execution.of_steps [ step 0 (Step.Crit Step.Enter) ]
  in
  (match Lb_mutex.Checker.check ~n:1 exec with
  | Error (Lb_mutex.Checker.Not_well_formed { who = 0; at = 0; _ }) -> ()
  | Error _ | Ok () -> Alcotest.fail "enter without try accepted");
  let exec2 =
    Execution.of_steps
      [ step 0 (Step.Crit Step.Try); step 0 (Step.Crit Step.Try) ]
  in
  match Lb_mutex.Checker.check ~n:1 exec2 with
  | Error (Lb_mutex.Checker.Not_well_formed _) -> ()
  | Error _ | Ok () -> Alcotest.fail "try-try accepted"

let test_checker_allows_reentry () =
  let cycle who =
    [
      step who (Step.Crit Step.Try);
      step who (Step.Crit Step.Enter);
      step who (Step.Crit Step.Exit);
      step who (Step.Crit Step.Rem);
    ]
  in
  let exec = Execution.of_steps (cycle 0 @ cycle 0 @ cycle 1) in
  match Lb_mutex.Checker.check ~n:2 exec with
  | Ok () -> ()
  | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v)

let test_checker_sequential_cs_ok () =
  let exec =
    Execution.of_steps
      [
        step 0 (Step.Crit Step.Try);
        step 1 (Step.Crit Step.Try);
        step 0 (Step.Crit Step.Enter);
        step 0 (Step.Crit Step.Exit);
        step 1 (Step.Crit Step.Enter);
        step 1 (Step.Crit Step.Exit);
        step 0 (Step.Crit Step.Rem);
        step 1 (Step.Crit Step.Rem);
      ]
  in
  match Lb_mutex.Checker.check ~n:2 exec with
  | Ok () -> ()
  | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v)

let test_checker_phases () =
  let exec =
    Execution.of_steps
      [
        step 0 (Step.Crit Step.Try);
        step 1 (Step.Crit Step.Try);
        step 0 (Step.Crit Step.Enter);
      ]
  in
  let phases = Lb_mutex.Checker.phases_at ~n:2 exec ~upto:3 in
  Alcotest.(check string) "p0 critical" "critical"
    (Lb_mutex.Checker.phase_name phases.(0));
  Alcotest.(check string) "p1 trying" "trying"
    (Lb_mutex.Checker.phase_name phases.(1));
  let phases1 = Lb_mutex.Checker.phases_at ~n:2 exec ~upto:1 in
  Alcotest.(check string) "p0 trying at 1" "trying"
    (Lb_mutex.Checker.phase_name phases1.(0))

let test_checker_mismatch_detection () =
  (* a structurally fine trace that is not an execution of YA *)
  let exec =
    Execution.of_steps [ step 0 (Step.Crit Step.Try); step 0 (Step.Read 0) ]
  in
  match Lb_mutex.Checker.check_algorithm ya ~n:2 exec with
  | Error (`Mismatch _) -> ()
  | Error (`Violation _) | Ok () -> Alcotest.fail "expected replay mismatch"

(* ----------------------------- Canonical ----------------------------- *)

let test_canonical_orders () =
  (* greedy canonical with a priority order makes processes enter in that
     order (they run to completion one after another) *)
  let order = [| 2; 0; 1 |] in
  let o = Lb_mutex.Canonical.run ~order ya ~n:3 in
  Alcotest.(check (list int)) "enter order" [ 2; 0; 1 ] o.Lb_mutex.Canonical.enter_order

let test_canonical_rr_rounds () =
  let o = Lb_mutex.Canonical.run_round_robin ~rounds:2 ya ~n:2 in
  Alcotest.(check (array int)) "two sections each" [| 2; 2 |]
    (Lb_mutex.Checker.completed_sections ~n:2 o.Lb_mutex.Canonical.exec)

let test_canonical_random_seeded () =
  let a = Lb_mutex.Canonical.run_random ~seed:5 ya ~n:3 in
  let b = Lb_mutex.Canonical.run_random ~seed:5 ya ~n:3 in
  Alcotest.(check bool) "deterministic in seed" true
    (Execution.equal a.Lb_mutex.Canonical.exec b.Lb_mutex.Canonical.exec)

let test_canonical_rejects_broken () =
  (* under round-robin the broken spinlock violates mutual exclusion and
     the canonical driver must refuse it *)
  match Lb_mutex.Canonical.run_round_robin broken ~n:2 with
  | _ -> Alcotest.fail "broken spinlock accepted"
  | exception Lb_mutex.Canonical.Check_failed _ -> ()

let test_canonical_sc_cost () =
  let o = Lb_mutex.Canonical.run ya ~n:4 in
  Alcotest.(check int) "sc_cost convenience"
    (Lb_cost.State_change.cost ya ~n:4 o.Lb_mutex.Canonical.exec)
    (Lb_mutex.Canonical.sc_cost ya ~n:4 o)

(* ---------------------------- Model checker -------------------------- *)

let test_mc_verifies_ya () =
  let r = Lb_mutex.Model_check.explore ya ~n:2 in
  (match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Verified -> ()
  | v ->
    Alcotest.failf "expected verified, got %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v));
  Alcotest.(check bool) "explored states" true (r.Lb_mutex.Model_check.states > 100)

let test_mc_finds_broken () =
  let r = Lb_mutex.Model_check.explore broken ~n:2 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Mutex_violation trace ->
    (* the witness must be a real execution of the algorithm ending in a
       double-critical state *)
    ignore (Execution.replay broken ~n:2 trace);
    let phases =
      Lb_mutex.Checker.phases_at ~n:2 trace ~upto:(Execution.length trace - 1)
    in
    ignore phases;
    (match Lb_mutex.Checker.check ~n:2 trace with
    | Error (Lb_mutex.Checker.Mutex_violated _) -> ()
    | Error _ | Ok () -> Alcotest.fail "witness does not violate mutex")
  | v ->
    Alcotest.failf "expected violation, got %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v)

let test_mc_bound () =
  let r = Lb_mutex.Model_check.explore ya ~n:3 ~max_states:100 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Bound_exceeded k ->
    Alcotest.(check bool) "bound value" true (k > 100)
  | _ -> Alcotest.fail "expected bound exceeded"

let test_mc_rounds_2 () =
  let r = Lb_mutex.Model_check.explore Lb_algos.Peterson2.algorithm ~n:2 ~rounds:2 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Verified -> ()
  | v ->
    Alcotest.failf "peterson2 rounds=2: %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v)

let suite =
  [
    Alcotest.test_case "checker accepts valid" `Quick test_checker_accepts_valid;
    Alcotest.test_case "checker rejects double enter" `Quick test_checker_rejects_double_enter;
    Alcotest.test_case "checker rejects ill-formed" `Quick test_checker_rejects_ill_formed;
    Alcotest.test_case "checker allows reentry" `Quick test_checker_allows_reentry;
    Alcotest.test_case "checker sequential CS" `Quick test_checker_sequential_cs_ok;
    Alcotest.test_case "checker phases" `Quick test_checker_phases;
    Alcotest.test_case "checker mismatch" `Quick test_checker_mismatch_detection;
    Alcotest.test_case "canonical priority order" `Quick test_canonical_orders;
    Alcotest.test_case "canonical rr rounds" `Quick test_canonical_rr_rounds;
    Alcotest.test_case "canonical random seeded" `Quick test_canonical_random_seeded;
    Alcotest.test_case "canonical rejects broken" `Quick test_canonical_rejects_broken;
    Alcotest.test_case "canonical sc cost" `Quick test_canonical_sc_cost;
    Alcotest.test_case "model check verifies ya" `Quick test_mc_verifies_ya;
    Alcotest.test_case "model check finds broken" `Quick test_mc_finds_broken;
    Alcotest.test_case "model check bound" `Quick test_mc_bound;
    Alcotest.test_case "model check rounds=2" `Quick test_mc_rounds_2;
  ]
