open Lb_shmem

let step = Step.step
let ya = Lb_algos.Yang_anderson.algorithm
let broken = Lb_algos.Broken_spinlock.algorithm

(* ------------------------------ Checker ------------------------------ *)

let test_checker_accepts_valid () =
  let exec = (Lb_mutex.Canonical.run ya ~n:3).Lb_mutex.Canonical.exec in
  (match Lb_mutex.Checker.check ~n:3 exec with
  | Ok () -> ()
  | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v));
  match Lb_mutex.Checker.check_algorithm ya ~n:3 exec with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "check_algorithm rejected a canonical run"

let test_checker_rejects_double_enter () =
  let exec =
    Execution.of_steps
      [
        step 0 (Step.Crit Step.Try);
        step 1 (Step.Crit Step.Try);
        step 0 (Step.Crit Step.Enter);
        step 1 (Step.Crit Step.Enter);
      ]
  in
  match Lb_mutex.Checker.check ~n:2 exec with
  | Error (Lb_mutex.Checker.Mutex_violated { a = 0; b = 1; at = 3 }) -> ()
  | Error v -> Alcotest.failf "wrong violation: %s" (Lb_mutex.Checker.violation_to_string v)
  | Ok () -> Alcotest.fail "accepted a mutex violation"

let test_checker_rejects_ill_formed () =
  let exec =
    Execution.of_steps [ step 0 (Step.Crit Step.Enter) ]
  in
  (match Lb_mutex.Checker.check ~n:1 exec with
  | Error (Lb_mutex.Checker.Not_well_formed { who = 0; at = 0; _ }) -> ()
  | Error _ | Ok () -> Alcotest.fail "enter without try accepted");
  let exec2 =
    Execution.of_steps
      [ step 0 (Step.Crit Step.Try); step 0 (Step.Crit Step.Try) ]
  in
  match Lb_mutex.Checker.check ~n:1 exec2 with
  | Error (Lb_mutex.Checker.Not_well_formed _) -> ()
  | Error _ | Ok () -> Alcotest.fail "try-try accepted"

let test_checker_allows_reentry () =
  let cycle who =
    [
      step who (Step.Crit Step.Try);
      step who (Step.Crit Step.Enter);
      step who (Step.Crit Step.Exit);
      step who (Step.Crit Step.Rem);
    ]
  in
  let exec = Execution.of_steps (cycle 0 @ cycle 0 @ cycle 1) in
  match Lb_mutex.Checker.check ~n:2 exec with
  | Ok () -> ()
  | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v)

let test_checker_sequential_cs_ok () =
  let exec =
    Execution.of_steps
      [
        step 0 (Step.Crit Step.Try);
        step 1 (Step.Crit Step.Try);
        step 0 (Step.Crit Step.Enter);
        step 0 (Step.Crit Step.Exit);
        step 1 (Step.Crit Step.Enter);
        step 1 (Step.Crit Step.Exit);
        step 0 (Step.Crit Step.Rem);
        step 1 (Step.Crit Step.Rem);
      ]
  in
  match Lb_mutex.Checker.check ~n:2 exec with
  | Ok () -> ()
  | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v)

let test_checker_phases () =
  let exec =
    Execution.of_steps
      [
        step 0 (Step.Crit Step.Try);
        step 1 (Step.Crit Step.Try);
        step 0 (Step.Crit Step.Enter);
      ]
  in
  let phases = Lb_mutex.Checker.phases_at ~n:2 exec ~upto:3 in
  Alcotest.(check string) "p0 critical" "critical"
    (Lb_mutex.Checker.phase_name phases.(0));
  Alcotest.(check string) "p1 trying" "trying"
    (Lb_mutex.Checker.phase_name phases.(1));
  let phases1 = Lb_mutex.Checker.phases_at ~n:2 exec ~upto:1 in
  Alcotest.(check string) "p0 trying at 1" "trying"
    (Lb_mutex.Checker.phase_name phases1.(0))

let test_checker_mismatch_detection () =
  (* a structurally fine trace that is not an execution of YA *)
  let exec =
    Execution.of_steps [ step 0 (Step.Crit Step.Try); step 0 (Step.Read 0) ]
  in
  match Lb_mutex.Checker.check_algorithm ya ~n:2 exec with
  | Error (`Mismatch _) -> ()
  | Error (`Violation _) | Ok () -> Alcotest.fail "expected replay mismatch"

(* ----------------------------- Canonical ----------------------------- *)

let test_canonical_orders () =
  (* greedy canonical with a priority order makes processes enter in that
     order (they run to completion one after another) *)
  let order = [| 2; 0; 1 |] in
  let o = Lb_mutex.Canonical.run ~order ya ~n:3 in
  Alcotest.(check (list int)) "enter order" [ 2; 0; 1 ] o.Lb_mutex.Canonical.enter_order

let test_canonical_rr_rounds () =
  let o = Lb_mutex.Canonical.run_round_robin ~rounds:2 ya ~n:2 in
  Alcotest.(check (array int)) "two sections each" [| 2; 2 |]
    (Lb_mutex.Checker.completed_sections ~n:2 o.Lb_mutex.Canonical.exec)

let test_canonical_random_seeded () =
  let a = Lb_mutex.Canonical.run_random ~seed:5 ya ~n:3 in
  let b = Lb_mutex.Canonical.run_random ~seed:5 ya ~n:3 in
  Alcotest.(check bool) "deterministic in seed" true
    (Execution.equal a.Lb_mutex.Canonical.exec b.Lb_mutex.Canonical.exec)

let test_canonical_rejects_broken () =
  (* under round-robin the broken spinlock violates mutual exclusion and
     the canonical driver must refuse it *)
  match Lb_mutex.Canonical.run_round_robin broken ~n:2 with
  | _ -> Alcotest.fail "broken spinlock accepted"
  | exception Lb_mutex.Canonical.Check_failed _ -> ()

let test_canonical_sc_cost () =
  let o = Lb_mutex.Canonical.run ya ~n:4 in
  Alcotest.(check int) "sc_cost convenience"
    (Lb_cost.State_change.cost ya ~n:4 o.Lb_mutex.Canonical.exec)
    (Lb_mutex.Canonical.sc_cost ya ~n:4 o)

(* ---------------------------- Model checker -------------------------- *)

let test_mc_verifies_ya () =
  let r = Lb_mutex.Model_check.explore ya ~n:2 in
  (match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Verified -> ()
  | v ->
    Alcotest.failf "expected verified, got %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v));
  Alcotest.(check bool) "explored states" true (r.Lb_mutex.Model_check.states > 100)

let test_mc_finds_broken () =
  let r = Lb_mutex.Model_check.explore broken ~n:2 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Mutex_violation trace ->
    (* the witness must be a real execution of the algorithm ending in a
       double-critical state *)
    ignore (Execution.replay broken ~n:2 trace);
    let phases =
      Lb_mutex.Checker.phases_at ~n:2 trace ~upto:(Execution.length trace - 1)
    in
    ignore phases;
    (match Lb_mutex.Checker.check ~n:2 trace with
    | Error (Lb_mutex.Checker.Mutex_violated _) -> ()
    | Error _ | Ok () -> Alcotest.fail "witness does not violate mutex")
  | v ->
    Alcotest.failf "expected violation, got %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v)

let test_mc_bound () =
  (* the budget is enforced at insertion time: the node table never
     overshoots max_states, and the report carries the true count *)
  let r = Lb_mutex.Model_check.explore ya ~n:3 ~max_states:100 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Bound_exceeded k ->
    Alcotest.(check int) "bound value" 100 k;
    Alcotest.(check int) "states = bound" 100 r.Lb_mutex.Model_check.states
  | _ -> Alcotest.fail "expected bound exceeded"

let test_mc_rounds_2 () =
  let r = Lb_mutex.Model_check.explore Lb_algos.Peterson2.algorithm ~n:2 ~rounds:2 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Verified -> ()
  | v ->
    Alcotest.failf "peterson2 rounds=2: %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v)

(* A reference explorer with structurally-typed keys (repr list, regs,
   phases, rems in an OCaml tuple) — immune to any key-packing bug by
   construction. Counts ALL reachable bounded states, so it only equals
   the production explorer's count on Verified instances. *)
let reference_states algo ~n ~rounds =
  let phase_int = function
    | Lb_mutex.Checker.Remainder -> 0
    | Lb_mutex.Checker.Trying -> 1
    | Lb_mutex.Checker.Critical -> 2
    | Lb_mutex.Checker.Exit_section -> 3
  in
  let key sys phases rems =
    ( List.init n (System.state_repr sys),
      Array.to_list sys.System.regs,
      List.map phase_int (Array.to_list phases),
      Array.to_list rems )
  in
  let seen = Hashtbl.create 64 in
  let q = Queue.create () in
  let push sys phases rems =
    let k = key sys phases rems in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      Queue.push (sys, phases, rems) q
    end
  in
  push (System.init algo ~n)
    (Array.make n Lb_mutex.Checker.Remainder)
    (Array.make n 0);
  while not (Queue.is_empty q) do
    let sys, phases, rems = Queue.pop q in
    for i = 0 to n - 1 do
      if rems.(i) < rounds then begin
        let sys' = System.copy sys in
        let action = System.pending_of sys' i in
        ignore (System.apply sys' (Step.step i action));
        let phases' = Array.copy phases and rems' = Array.copy rems in
        (match action with
        | Step.Crit Step.Try -> phases'.(i) <- Lb_mutex.Checker.Trying
        | Step.Crit Step.Enter -> phases'.(i) <- Lb_mutex.Checker.Critical
        | Step.Crit Step.Exit -> phases'.(i) <- Lb_mutex.Checker.Exit_section
        | Step.Crit Step.Rem ->
          phases'.(i) <- Lb_mutex.Checker.Remainder;
          rems'.(i) <- rems.(i) + 1
        | Step.Read _ | Step.Write _ | Step.Rmw _ -> ());
        push sys' phases' rems'
      end
    done
  done;
  Hashtbl.length seen

(* An algorithm whose local-state reprs contain the old string-key
   scheme's delimiters, chosen so that two distinct reachable states
   have identical delimiter-joined keys: ("x;y", "z") and ("x", "y;z")
   both join to "x;y;z;". Process 0 runs its critical section first and
   then signals through [flag]; process 1 busy-waits on [flag], so the
   whole thing is verified and every reachable state must be counted. *)
module Collide_state = struct
  type state = { me : int; k : int }

  let initial ~n:_ ~me = { me; k = 0 }

  let pending ~n:_ ~me:_ { me; k } =
    match (me, k) with
    | 0, (0 | 1) -> Step.Read 0
    | 0, 2 -> Step.Crit Step.Try
    | 0, 3 -> Step.Crit Step.Enter
    | 0, 4 -> Step.Crit Step.Exit
    | 0, 5 -> Step.Write (0, 1)
    | 0, 6 -> Step.Crit Step.Rem
    | 0, _ -> Step.Read 0
    | _, (0 | 1 | 2) -> Step.Read 0
    | _, 3 -> Step.Crit Step.Try
    | _, 4 -> Step.Crit Step.Enter
    | _, 5 -> Step.Crit Step.Exit
    | _, 6 -> Step.Crit Step.Rem
    | _, _ -> Step.Read 0

  let advance ~n:_ ~me:_ ({ me; k } as s) resp =
    match (me, k, resp) with
    | _, 7, _ -> s
    | 1, 2, Step.Got v -> if v = 1 then { s with k = 3 } else s
    | _, _, _ -> { s with k = k + 1 }

  let repr { me; k } =
    match (me, k) with
    | 0, 0 -> "x;y"
    | 0, 1 -> "x"
    | 1, 0 -> "z"
    | 1, 1 -> "y;z"
    | _ -> Printf.sprintf "p%d_%d" me k
end

let collide_algo =
  let module S = Proc.Make_spawn (Collide_state) in
  {
    Algorithm.name = "collide_test";
    description = "adversarial reprs containing the old key delimiters";
    kind = Algorithm.Registers_only;
    registers = (fun ~n:_ -> [| Register.spec "flag" |]);
    spawn = S.spawn;
    max_n = Some 2;
  }

let test_mc_adversarial_reprs () =
  (* the hazard: delimiter-joined reprs of the two distinct states agree *)
  Alcotest.(check string) "old scheme collides"
    (String.concat ";" [ "x;y"; "z" ] ^ ";")
    (String.concat ";" [ "x"; "y;z" ] ^ ";");
  let r = Lb_mutex.Model_check.explore collide_algo ~n:2 in
  (match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Verified -> ()
  | v ->
    Alcotest.failf "collide_test: %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v));
  Alcotest.(check int) "no state merged by packing"
    (reference_states collide_algo ~n:2 ~rounds:1)
    r.Lb_mutex.Model_check.states

let test_mc_matches_reference () =
  (* cross-validate the packed-key explorer's count on a real algorithm *)
  let r = Lb_mutex.Model_check.explore Lb_algos.Peterson2.algorithm ~n:2 in
  Alcotest.(check int) "peterson2 n=2 states"
    (reference_states Lb_algos.Peterson2.algorithm ~n:2 ~rounds:1)
    r.Lb_mutex.Model_check.states

let test_mc_witness_replay_mutex () =
  let r = Lb_mutex.Model_check.explore broken ~n:2 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Mutex_violation tr ->
    (* the parent-index trace must replay cleanly from the initial state
       (Step_mismatch would escape) and end with two processes critical *)
    ignore (Execution.replay broken ~n:2 tr);
    let phases =
      Lb_mutex.Checker.phases_at ~n:2 tr ~upto:(Execution.length tr)
    in
    let crit =
      Array.fold_left
        (fun acc ph -> if ph = Lb_mutex.Checker.Critical then acc + 1 else acc)
        0 phases
    in
    Alcotest.(check bool) "two critical at end" true (crit >= 2)
  | v ->
    Alcotest.failf "expected violation, got %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v)

let test_mc_witness_replay_deadlock () =
  let flat = Lb_algos.Yang_anderson_flat.algorithm in
  let r = Lb_mutex.Model_check.explore flat ~n:3 in
  match r.Lb_mutex.Model_check.verdict with
  | Lb_mutex.Model_check.Deadlock tr ->
    let sys = Execution.replay flat ~n:3 tr in
    let rems = Execution.count_crit tr Step.Rem in
    let unfinished = List.filter (fun i -> rems.(i) < 1) [ 0; 1; 2 ] in
    Alcotest.(check bool) "some process unfinished" true (unfinished <> []);
    Alcotest.(check bool) "no unfinished process can move" true
      (List.for_all (fun i -> not (System.would_change_state sys i)) unfinished)
  | v ->
    Alcotest.failf "expected deadlock, got %s"
      (Format.asprintf "%a" Lb_mutex.Model_check.pp_verdict v)

(* verdicts, states and transitions must not depend on the job count *)
let verdict_equal a b =
  match (a, b) with
  | Lb_mutex.Model_check.Verified, Lb_mutex.Model_check.Verified -> true
  | Lb_mutex.Model_check.Bound_exceeded j, Lb_mutex.Model_check.Bound_exceeded k
  | Lb_mutex.Model_check.Mem_exceeded j, Lb_mutex.Model_check.Mem_exceeded k ->
    j = k
  | Lb_mutex.Model_check.Mutex_violation s, Lb_mutex.Model_check.Mutex_violation t
  | Lb_mutex.Model_check.Deadlock s, Lb_mutex.Model_check.Deadlock t ->
    Execution.equal s t
  | _ -> false

let prop_mc_jobs_equivalence =
  let arb =
    QCheck.make
      ~print:(fun (ai, n) ->
        let algo = List.nth Lb_algos.Registry.all ai in
        Printf.sprintf "(%s, n=%d)" algo.Algorithm.name n)
      QCheck.Gen.(
        pair (int_range 0 (List.length Lb_algos.Registry.all - 1)) (int_range 2 3))
  in
  QCheck.Test.make ~count:12 ~name:"explore jobs=1 = explore jobs=3" arb
    (fun (ai, n) ->
      let algo = List.nth Lb_algos.Registry.all ai in
      QCheck.assume (Algorithm.supports algo n);
      let a = Lb_mutex.Model_check.explore algo ~n ~max_states:20_000 ~jobs:1 in
      let b = Lb_mutex.Model_check.explore algo ~n ~max_states:20_000 ~jobs:3 in
      verdict_equal a.Lb_mutex.Model_check.verdict b.Lb_mutex.Model_check.verdict
      && a.Lb_mutex.Model_check.states = b.Lb_mutex.Model_check.states
      && a.Lb_mutex.Model_check.transitions
         = b.Lb_mutex.Model_check.transitions)

(* --------------------------- Out-of-core ----------------------------- *)

module MC = Lb_mutex.Model_check

let fresh_spill =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d = Filename.temp_file "mutexlb_spill" (Printf.sprintf "_%d" !ctr) in
    Sys.remove d;
    d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_spill f =
  let dir = fresh_spill () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* directory fingerprint: sorted (name, contents) pairs — two spill dirs
   compare equal iff they are byte-identical file for file *)
let dir_bytes dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f ->
         (f, Lb_util.Fsio.read ~path:(Filename.concat dir f) ()))

let filter4 = Lb_algos.Filter.algorithm

let check_same_outcome label (a : MC.report) (b : MC.report) =
  Alcotest.(check bool)
    (label ^ ": verdict") true
    (verdict_equal a.MC.verdict b.MC.verdict);
  Alcotest.(check int) (label ^ ": states") a.MC.states b.MC.states;
  Alcotest.(check int) (label ^ ": transitions") a.MC.transitions
    b.MC.transitions

(* a budget small enough that the visited set cannot stay resident, so
   eviction and the disk membership pass actually run — and the counts
   still match the all-in-RAM exploration exactly *)
let test_mc_spill_equivalence () =
  let base = MC.explore ya ~n:3 in
  with_spill (fun dir ->
      let r =
        MC.explore ya ~n:3 ~mem_budget:(2 * 1024 * 1024) ~spill_dir:dir
      in
      check_same_outcome "spill+evict vs RAM" base r;
      Alcotest.(check bool) "certifying" true (MC.certifying r))

(* without a spill dir the same budget is a hard stop — and the stop
   count is deterministic, so two runs agree exactly *)
let test_mc_mem_exceeded () =
  let run () =
    MC.explore filter4 ~n:4 ~max_states:5_000_000
      ~mem_budget:(8 * 1024 * 1024)
  in
  let a = run () and b = run () in
  (match a.MC.verdict with
  | MC.Mem_exceeded k ->
    Alcotest.(check int) "carries stored count" a.MC.states k
  | v ->
    Alcotest.failf "expected mem_exceeded, got %s"
      (Format.asprintf "%a" MC.pp_verdict v));
  check_same_outcome "two identical budget runs" a b

(* the ISSUE acceptance instance: filter at n=4 needs ~26 MiB resident;
   under 8 MiB the in-RAM core stops (above) while the spilling core
   certifies the full 127515-state space, interruption and job count
   notwithstanding *)
let test_mc_acceptance_n4 () =
  let budget = 8 * 1024 * 1024 in
  let base = MC.explore filter4 ~n:4 ~max_states:5_000_000 in
  (match base.MC.verdict with
  | MC.Verified -> ()
  | v ->
    Alcotest.failf "filter n=4 baseline: %s"
      (Format.asprintf "%a" MC.pp_verdict v));
  with_spill (fun d1 ->
      with_spill (fun d4 ->
          let r1 =
            MC.explore filter4 ~n:4 ~max_states:5_000_000 ~mem_budget:budget
              ~spill_dir:d1 ~jobs:1
          in
          let r4 =
            MC.explore filter4 ~n:4 ~max_states:5_000_000 ~mem_budget:budget
              ~spill_dir:d4 ~jobs:4
          in
          check_same_outcome "budgeted vs unbudgeted" base r1;
          check_same_outcome "jobs=1 vs jobs=4 under budget" r1 r4;
          Alcotest.(check bool) "certifying under budget" true
            (MC.certifying r1);
          (* the spill bytes themselves are deterministic: interner ids
             are assigned in the sequential merge, so runs, frontiers,
             node log, names and manifest all match file for file *)
          List.iter2
            (fun (f1, c1) (f4, c4) ->
              Alcotest.(check string) "spill file name" f1 f4;
              Alcotest.(check bool)
                (Printf.sprintf "spill file %s bytes" f1)
                true (c1 = c4))
            (dir_bytes d1) (dir_bytes d4)))

(* kill-and-resume: a deadline abort mid-exploration leaves a resumable
   checkpoint; resuming completes with the uninterrupted run's verdict,
   counts, and byte-identical spill files. A second resume hits the
   final manifest and reports without re-exploring. *)
let test_mc_resume_identity () =
  with_spill (fun dir ->
      with_spill (fun ref_dir ->
          let interrupted =
            MC.explore ya ~n:3 ~spill_dir:dir ~deadline:0.01
          in
          (match interrupted.MC.verdict with
          | MC.Deadline_exceeded _ -> ()
          | MC.Verified ->
            (* machine fast enough to finish inside the deadline: the
               resume below degenerates to a final-manifest read, which
               is still worth asserting *)
            ()
          | v ->
            Alcotest.failf "interrupt: %s"
              (Format.asprintf "%a" MC.pp_verdict v));
          let resumed = MC.explore ya ~n:3 ~spill_dir:dir ~resume:true in
          let reference = MC.explore ya ~n:3 ~spill_dir:ref_dir in
          check_same_outcome "resumed vs uninterrupted" reference resumed;
          List.iter2
            (fun (f1, c1) (f2, c2) ->
              Alcotest.(check string) "spill file name" f1 f2;
              Alcotest.(check bool)
                (Printf.sprintf "spill file %s bytes" f1)
                true (c1 = c2))
            (dir_bytes ref_dir) (dir_bytes dir);
          let again = MC.explore ya ~n:3 ~spill_dir:dir ~resume:true in
          check_same_outcome "final-manifest resume" resumed again))

(* resuming with mismatched parameters must refuse, not silently explore
   a different instance into the same directory *)
let test_mc_resume_mismatch () =
  with_spill (fun dir ->
      ignore (MC.explore ya ~n:2 ~spill_dir:dir ~deadline:0.0);
      Alcotest.check_raises "wrong n"
        (Invalid_argument
           "Model_check.explore: resume: manifest has n = 2, this run wants 3")
        (fun () -> ignore (MC.explore ya ~n:3 ~spill_dir:dir ~resume:true)))

(* satellite: live_words is deterministically accounted — two identical
   runs agree to the word, where a Gc.stat sample would wobble *)
let test_mc_live_words_stable () =
  let a = MC.explore ya ~n:3 and b = MC.explore ya ~n:3 in
  Alcotest.(check int) "live_words run-to-run" a.MC.live_words b.MC.live_words;
  let j1 = MC.explore ya ~n:3 ~jobs:1 and j4 = MC.explore ya ~n:3 ~jobs:4 in
  Alcotest.(check int) "live_words jobs=1 vs jobs=4" j1.MC.live_words
    j4.MC.live_words

(* lossy modes: same verdict and (collision-free at this size) the same
   counts, but never certifying *)
let test_mc_lossy () =
  let exact = MC.explore ya ~n:3 in
  let bs = MC.explore ya ~n:3 ~lossy:MC.Bitstate in
  let hc = MC.explore ya ~n:3 ~lossy:MC.Hash_compact in
  Alcotest.(check bool) "bitstate not certifying" false (MC.certifying bs);
  Alcotest.(check bool) "hashcompact not certifying" false (MC.certifying hc);
  Alcotest.(check bool) "exact certifying" true (MC.certifying exact);
  (* hash compaction distinguishes all 40539 states at 60 fingerprint
     bits with overwhelming probability — the count must match *)
  check_same_outcome "hashcompact vs exact" exact hc;
  (match bs.MC.verdict with
  | MC.Verified -> ()
  | v ->
    Alcotest.failf "bitstate: %s" (Format.asprintf "%a" MC.pp_verdict v));
  Alcotest.(check bool) "bitstate cannot overcount" true
    (bs.MC.states <= exact.MC.states)

(* the non-certifying mark is sticky: a lossy run's spill directory can
   never be resumed into a certifying verdict, whatever flags the
   resuming call passes *)
let test_mc_lossy_sticky () =
  with_spill (fun dir ->
      let started =
        MC.explore ya ~n:3 ~spill_dir:dir ~lossy:MC.Bitstate ~deadline:0.0
      in
      Alcotest.(check bool) "initial run lossy" false (MC.certifying started);
      let resumed = MC.explore ya ~n:3 ~spill_dir:dir ~resume:true in
      Alcotest.(check bool) "resumed without flags: still lossy" false
        (MC.certifying resumed);
      (match resumed.MC.lossy with
      | Some MC.Bitstate -> ()
      | Some MC.Hash_compact | None ->
        Alcotest.fail "manifest did not pin the bitstate mode"))

(* satellite: Bound_exceeded carries the same globally-ordered count at
   any job count — the bound is enforced in the sequential merge *)
let prop_mc_bound_jobs =
  let arb =
    QCheck.make
      ~print:(fun (ai, bound) ->
        let algo = List.nth Lb_algos.Registry.all ai in
        Printf.sprintf "(%s, max_states=%d)" algo.Algorithm.name bound)
      QCheck.Gen.(
        pair
          (int_range 0 (List.length Lb_algos.Registry.all - 1))
          (int_range 50 2_000))
  in
  QCheck.Test.make ~count:15 ~name:"Bound_exceeded count jobs=1 = jobs=4" arb
    (fun (ai, bound) ->
      let algo = List.nth Lb_algos.Registry.all ai in
      QCheck.assume (Algorithm.supports algo 3);
      let a = MC.explore algo ~n:3 ~max_states:bound ~jobs:1 in
      let b = MC.explore algo ~n:3 ~max_states:bound ~jobs:4 in
      (match (a.MC.verdict, b.MC.verdict) with
      | MC.Bound_exceeded j, MC.Bound_exceeded k -> j = k && j = bound
      | u, v -> verdict_equal u v)
      && a.MC.states = b.MC.states
      && a.MC.live_words = b.MC.live_words)

(* tentpole: the two merge schedulings are observably one algorithm —
   same verdict, counts and accounted words at any job count. Seq is
   the reference oracle --merge seq exposes *)
let prop_mc_merge_equivalence =
  let arb =
    QCheck.make
      ~print:(fun (ai, n, jobs) ->
        let algo = List.nth Lb_algos.Registry.all ai in
        Printf.sprintf "(%s, n=%d, jobs=%d)" algo.Algorithm.name n jobs)
      QCheck.Gen.(
        triple
          (int_range 0 (List.length Lb_algos.Registry.all - 1))
          (int_range 2 3) (int_range 1 4))
  in
  QCheck.Test.make ~count:12 ~name:"explore merge=Seq = merge=Par" arb
    (fun (ai, n, jobs) ->
      let algo = List.nth Lb_algos.Registry.all ai in
      QCheck.assume (Algorithm.supports algo n);
      let a =
        MC.explore algo ~n ~max_states:20_000 ~jobs ~merge:MC.Seq
      in
      let b =
        MC.explore algo ~n ~max_states:20_000 ~jobs ~merge:MC.Par
      in
      verdict_equal a.MC.verdict b.MC.verdict
      && a.MC.states = b.MC.states
      && a.MC.transitions = b.MC.transitions
      && a.MC.live_words = b.MC.live_words)

(* tentpole: compressed resident shards are exact — hash-table verdict
   and counts, a smaller accounted footprint, and byte-identical spill
   output *)
let test_mc_compress_resident () =
  let base = MC.explore ya ~n:3 in
  let comp = MC.explore ya ~n:3 ~compress_resident:true in
  check_same_outcome "compressed vs hash-table" base comp;
  Alcotest.(check bool) "certifying" true (MC.certifying comp);
  Alcotest.(check bool) "fewer accounted words" true
    (comp.MC.live_words < base.MC.live_words);
  with_spill (fun d1 ->
      with_spill (fun d2 ->
          let s1 = MC.explore ya ~n:3 ~spill_dir:d1 in
          let s2 =
            MC.explore ya ~n:3 ~spill_dir:d2 ~compress_resident:true
          in
          check_same_outcome "spilled, compressed vs hash-table" s1 s2;
          (* every spill artifact matches byte for byte except the
             manifest, whose accounted-words field tracks the (smaller)
             compressed footprint — mask that line and its checksum *)
          let mask_words s =
            String.split_on_char '\n' s
            |> List.filter (fun l ->
                   not
                     (String.starts_with ~prefix:"words " l
                     || String.starts_with ~prefix:"sum " l))
            |> String.concat "\n"
          in
          List.iter2
            (fun (f1, c1) (f2, c2) ->
              Alcotest.(check string) "spill file name" f1 f2;
              let c1, c2 =
                if f1 = "check.manifest" then (mask_words c1, mask_words c2)
                else (c1, c2)
              in
              Alcotest.(check bool)
                (Printf.sprintf "spill file %s bytes" f1)
                true (c1 = c2))
            (dir_bytes d1) (dir_bytes d2)))

(* spill bytes are merge-mode independent, eviction and the disk
   membership pass included *)
let test_mc_merge_spill_identity () =
  with_spill (fun ds ->
      with_spill (fun dp ->
          let rs =
            MC.explore ya ~n:3 ~mem_budget:(2 * 1024 * 1024) ~spill_dir:ds
              ~jobs:4 ~merge:MC.Seq
          in
          let rp =
            MC.explore ya ~n:3 ~mem_budget:(2 * 1024 * 1024) ~spill_dir:dp
              ~jobs:4 ~merge:MC.Par
          in
          check_same_outcome "seq vs par under budget" rs rp;
          List.iter2
            (fun (f1, c1) (f2, c2) ->
              Alcotest.(check string) "spill file name" f1 f2;
              Alcotest.(check bool)
                (Printf.sprintf "spill file %s bytes" f1)
                true (c1 = c2))
            (dir_bytes ds) (dir_bytes dp)))

(* a checkpoint written under one merge mode resumes under the other:
   the mode is scheduling, not state, so nothing pins it in the
   manifest *)
let test_mc_resume_crosses_merge_modes () =
  with_spill (fun dir ->
      with_spill (fun ref_dir ->
          ignore
            (MC.explore ya ~n:3 ~spill_dir:dir ~deadline:0.01 ~merge:MC.Par);
          let resumed =
            MC.explore ya ~n:3 ~spill_dir:dir ~resume:true ~merge:MC.Seq
          in
          let reference = MC.explore ya ~n:3 ~spill_dir:ref_dir in
          check_same_outcome "cross-mode resume" reference resumed;
          List.iter2
            (fun (f1, c1) (f2, c2) ->
              Alcotest.(check string) "spill file name" f1 f2;
              Alcotest.(check bool)
                (Printf.sprintf "spill file %s bytes" f1)
                true (c1 = c2))
            (dir_bytes ref_dir) (dir_bytes dir)))

(* satellite: the per-stage timing breakdown is populated and sane *)
let test_mc_stats () =
  let r = MC.explore ya ~n:2 in
  let st = r.MC.stats in
  Alcotest.(check bool) "layers counted" true (st.MC.layers > 0);
  Alcotest.(check bool) "stage seconds nonnegative" true
    (st.MC.expand_seconds >= 0.
    && st.MC.merge_seconds >= 0.
    && st.MC.spill_seconds >= 0.)

let suite =
  [
    Alcotest.test_case "checker accepts valid" `Quick test_checker_accepts_valid;
    Alcotest.test_case "checker rejects double enter" `Quick test_checker_rejects_double_enter;
    Alcotest.test_case "checker rejects ill-formed" `Quick test_checker_rejects_ill_formed;
    Alcotest.test_case "checker allows reentry" `Quick test_checker_allows_reentry;
    Alcotest.test_case "checker sequential CS" `Quick test_checker_sequential_cs_ok;
    Alcotest.test_case "checker phases" `Quick test_checker_phases;
    Alcotest.test_case "checker mismatch" `Quick test_checker_mismatch_detection;
    Alcotest.test_case "canonical priority order" `Quick test_canonical_orders;
    Alcotest.test_case "canonical rr rounds" `Quick test_canonical_rr_rounds;
    Alcotest.test_case "canonical random seeded" `Quick test_canonical_random_seeded;
    Alcotest.test_case "canonical rejects broken" `Quick test_canonical_rejects_broken;
    Alcotest.test_case "canonical sc cost" `Quick test_canonical_sc_cost;
    Alcotest.test_case "model check verifies ya" `Quick test_mc_verifies_ya;
    Alcotest.test_case "model check finds broken" `Quick test_mc_finds_broken;
    Alcotest.test_case "model check bound" `Quick test_mc_bound;
    Alcotest.test_case "model check rounds=2" `Quick test_mc_rounds_2;
    Alcotest.test_case "model check adversarial reprs" `Quick
      test_mc_adversarial_reprs;
    Alcotest.test_case "model check matches reference count" `Quick
      test_mc_matches_reference;
    Alcotest.test_case "model check witness replays (mutex)" `Quick
      test_mc_witness_replay_mutex;
    Alcotest.test_case "model check witness replays (deadlock)" `Quick
      test_mc_witness_replay_deadlock;
    QCheck_alcotest.to_alcotest prop_mc_jobs_equivalence;
    Alcotest.test_case "spill+evict equals in-RAM" `Quick
      test_mc_spill_equivalence;
    Alcotest.test_case "mem budget exceeded deterministically" `Quick
      test_mc_mem_exceeded;
    Alcotest.test_case "n=4 certified under budget (acceptance)" `Slow
      test_mc_acceptance_n4;
    Alcotest.test_case "kill-and-resume identity" `Quick
      test_mc_resume_identity;
    Alcotest.test_case "resume rejects mismatched instance" `Quick
      test_mc_resume_mismatch;
    Alcotest.test_case "live_words deterministic" `Quick
      test_mc_live_words_stable;
    Alcotest.test_case "lossy modes non-certifying" `Quick test_mc_lossy;
    Alcotest.test_case "lossy mark sticky across resume" `Quick
      test_mc_lossy_sticky;
    QCheck_alcotest.to_alcotest prop_mc_bound_jobs;
    QCheck_alcotest.to_alcotest prop_mc_merge_equivalence;
    Alcotest.test_case "compressed resident shards exact" `Quick
      test_mc_compress_resident;
    Alcotest.test_case "merge modes spill byte-identical" `Quick
      test_mc_merge_spill_identity;
    Alcotest.test_case "resume crosses merge modes" `Quick
      test_mc_resume_crosses_merge_modes;
    Alcotest.test_case "stage timing breakdown" `Quick test_mc_stats;
  ]
