open Lb_shmem
module C = Lb_core.Construct
module P = Lb_core.Permutation
module V = Lb_core.Verify
module L = Lb_core.Linearize

let ya = Lb_algos.Yang_anderson.algorithm
let bakery = Lb_algos.Bakery.algorithm
let burns = Lb_algos.Burns.algorithm

let check_ok label = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e

let run_all_checks algo n pi =
  let c = C.run algo ~n pi in
  List.iter (fun (label, r) -> check_ok label r) (V.all c)

let verify_cases =
  List.concat_map
    (fun (algo : Algorithm.t) ->
      List.map
        (fun n ->
          Alcotest.test_case
            (Printf.sprintf "invariants %s n=%d" algo.Algorithm.name n)
            `Quick
            (fun () ->
              List.iter (run_all_checks algo n)
                (if n <= 3 then P.all n else [ P.identity n; P.reverse n ])))
        [ 1; 2; 3; 5 ])
    [ ya; bakery; burns; Lb_algos.Filter.algorithm; Lb_algos.Tournament.algorithm ]

let test_solo_construction () =
  (* n=1: the construction is a solo run of p0 *)
  let c = C.run ya ~n:1 (P.identity 1) in
  let exec = L.execution c in
  Alcotest.(check (list int)) "enter order" [ 0 ] (Execution.crit_order exec);
  (* every metastep contains exactly p0 *)
  Lb_core.Metastep.iter c.C.arena (fun m ->
      Alcotest.(check (list int)) "only p0" [ 0 ] (Lb_core.Metastep.own m))

let test_stage_order_is_pi () =
  List.iter
    (fun pi ->
      let c = C.run ya ~n:4 pi in
      let exec = L.execution c in
      Alcotest.(check (list int)) "CS order is pi"
        (Array.to_list (P.to_array pi))
        (Execution.crit_order exec))
    (P.all 4)

let test_all_perms_distinct_executions () =
  let fps =
    List.map
      (fun pi -> Execution.fingerprint (L.execution (C.run ya ~n:4 pi)))
      (P.all 4)
  in
  Alcotest.(check int) "24 distinct canonical executions" 24
    (List.length (List.sort_uniq compare fps))

let test_invisibility () =
  (* the definitive invisibility check: in the canonical linearization, a
     process never READS a value written by a higher-pi-indexed process.
     We replay and track who wrote each register's current value. *)
  let check algo n pi =
    let c = C.run algo ~n pi in
    let exec = L.execution c in
    let nregs = Array.length (algo.Algorithm.registers ~n) in
    let last_writer = Array.make nregs (-1) in
    let sys = System.init algo ~n in
    Lb_util.Vec.iter
      (fun (s : Step.t) ->
        (match s.Step.action with
        | Step.Read reg ->
          let writer = last_writer.(reg) in
          if writer >= 0 && not (P.lower_or_equal pi writer s.Step.who) then
            Alcotest.failf "p%d read a value written by later process p%d"
              s.Step.who writer
        | Step.Write (reg, _) -> last_writer.(reg) <- s.Step.who
        | Step.Rmw _ | Step.Crit _ -> ());
        ignore (System.apply sys s))
      exec
  in
  List.iter
    (fun pi -> check ya 4 pi)
    (P.all 4);
  List.iter (fun pi -> check bakery 3 pi) (P.all 3)

let test_write_chain_contents () =
  let c = C.run bakery ~n:3 (P.reverse 3) in
  (* every write metastep appears in exactly one chain, at its register *)
  let in_chain = Hashtbl.create 64 in
  Hashtbl.iter
    (fun reg arr ->
      Array.iter
        (fun id ->
          Alcotest.(check bool) "no duplicate chain membership" false
            (Hashtbl.mem in_chain id);
          Hashtbl.replace in_chain id ();
          let m = Lb_core.Metastep.get c.C.arena id in
          Alcotest.(check int) "chain register" reg m.Lb_core.Metastep.reg)
        arr)
    c.C.write_chain;
  Lb_core.Metastep.iter c.C.arena (fun m ->
      if m.Lb_core.Metastep.kind = Lb_core.Metastep.Write_meta then
        Alcotest.(check bool) "write metastep in a chain" true
          (Hashtbl.mem in_chain m.Lb_core.Metastep.id))

let test_proc_meta_complete () =
  let n = 3 in
  let c = C.run ya ~n (P.identity n) in
  (* each process's chain covers exactly the metasteps containing it *)
  for i = 0 to n - 1 do
    let chain = C.metasteps_of c i in
    let from_arena = ref [] in
    Lb_core.Metastep.iter c.C.arena (fun m ->
        if Lb_core.Metastep.contains m i then
          from_arena := m.Lb_core.Metastep.id :: !from_arena);
    Alcotest.(check (list int))
      (Printf.sprintf "chain of p%d" i)
      (List.sort compare (Array.to_list chain))
      (List.sort compare !from_arena)
  done

let test_pc () =
  let c = C.run ya ~n:2 (P.identity 2) in
  let chain = C.metasteps_of c 0 in
  Alcotest.(check int) "first metastep is Pc 1" 1 (C.pc c 0 chain.(0));
  Alcotest.(check int) "last metastep" (Array.length chain)
    (C.pc c 0 chain.(Array.length chain - 1));
  match C.pc c 0 (-1) with
  | _ -> Alcotest.fail "found bogus metastep"
  | exception Not_found -> ()

let test_rejects_rmw () =
  match C.run Lb_algos.Rmw_locks.ticket ~n:2 (P.identity 2) with
  | _ -> Alcotest.fail "rmw algorithm accepted"
  | exception C.Unsupported_primitive _ -> ()

let test_rejects_bad_n () =
  (match C.run ya ~n:2 (P.identity 3) with
  | _ -> Alcotest.fail "size mismatch accepted"
  | exception Invalid_argument _ -> ());
  match C.run Lb_algos.Peterson2.algorithm ~n:3 (P.identity 3) with
  | _ -> Alcotest.fail "unsupported n accepted"
  | exception Invalid_argument _ -> ()

let test_linearization_replays () =
  (* replaying the canonical linearization validates every step against
     the automata -- run across algorithms and permutations *)
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun pi ->
          let c = C.run algo ~n:3 pi in
          ignore (Execution.replay algo ~n:3 (L.execution c)))
        (P.all 3))
    [ ya; bakery; burns ]

let test_random_linearizations_replay () =
  let rng = Lb_util.Rng.create 17 in
  let c = C.run bakery ~n:4 (P.reverse 4) in
  for _ = 1 to 10 do
    let exec = L.random_execution rng c in
    ignore (Execution.replay bakery ~n:4 exec);
    match Lb_mutex.Checker.check ~n:4 exec with
    | Ok () -> ()
    | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v)
  done

let test_lemma_5_4_across_stages () =
  (* Lemma 5.4 verbatim: for stages i <= j <= k, the projection of the
     stage-i process is identical in linearizations of (M_j, ⪯_j) and
     (M_k, ⪯_k) — later stages never disturb what earlier processes
     experienced *)
  List.iter
    (fun (algo : Algorithm.t) ->
      let n = 4 in
      List.iter
        (fun pi ->
          let lins =
            List.init n (fun j ->
                L.execution (C.run_stages algo ~n ~stages:(j + 1) pi))
          in
          for i = 0 to n - 1 do
            let p = P.process_at pi i in
            let reference = Execution.projection (List.nth lins (n - 1)) p in
            for j = i to n - 2 do
              Alcotest.(check bool)
                (Printf.sprintf "%s: stage %d proj of p%d at j=%d"
                   algo.Algorithm.name i p j)
                true
                (List.equal Step.equal
                   (Execution.projection (List.nth lins j) p)
                   reference)
            done
          done)
        [ P.identity 4; P.reverse 4; P.of_array [| 2; 0; 3; 1 |] ])
    [ ya; bakery; burns ]

let test_run_stages_partial () =
  (* only the first k processes of pi appear in a k-stage construction *)
  let pi = P.of_array [| 2; 0; 1 |] in
  let c = C.run_stages ya ~n:3 ~stages:2 pi in
  let exec = L.execution c in
  Alcotest.(check (list int)) "only stages 0,1 enter" [ 2; 0 ]
    (Execution.crit_order exec);
  Alcotest.(check int) "p1 has no metasteps" 0
    (Array.length (C.metasteps_of c 1))

let test_metastep_order_is_topo () =
  let c = C.run ya ~n:3 (P.identity 3) in
  let order = L.metastep_order c in
  Alcotest.(check int) "covers all metasteps"
    (Lb_core.Metastep.count c.C.arena)
    (List.length order);
  let pos = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace pos id i) order;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Lb_core.Poset.leq c.C.order a b && a <> b then
            Alcotest.(check bool) "respects poset" true
              (Hashtbl.find pos a < Hashtbl.find pos b))
        order)
    order

let suite =
  verify_cases
  @ [
      Alcotest.test_case "solo construction" `Quick test_solo_construction;
      Alcotest.test_case "CS order = pi (all S4)" `Quick test_stage_order_is_pi;
      Alcotest.test_case "distinct executions" `Quick test_all_perms_distinct_executions;
      Alcotest.test_case "invisibility of later processes" `Quick test_invisibility;
      Alcotest.test_case "write chain contents" `Quick test_write_chain_contents;
      Alcotest.test_case "proc_meta complete" `Quick test_proc_meta_complete;
      Alcotest.test_case "pc positions" `Quick test_pc;
      Alcotest.test_case "rejects rmw" `Quick test_rejects_rmw;
      Alcotest.test_case "rejects bad n" `Quick test_rejects_bad_n;
      Alcotest.test_case "linearizations replay" `Quick test_linearization_replays;
      Alcotest.test_case "random linearizations replay" `Quick test_random_linearizations_replay;
      Alcotest.test_case "Lemma 5.4 across stages" `Quick test_lemma_5_4_across_stages;
      Alcotest.test_case "run_stages partial" `Quick test_run_stages_partial;
      Alcotest.test_case "metastep order is topological" `Quick test_metastep_order_is_topo;
    ]
