(* Smoke tests for the experiment drivers: each must produce a non-empty
   table on reduced parameters, and the quantitative claims each table
   demonstrates are re-asserted on its cells where cheap. *)

let contains = Astring_contains.contains

let render t = Lb_util.Table.render t

let test_e1 () =
  let t =
    Lb_exp.E1_lower_bound.table ~seed:1 ~budget:6
      ~algos:[ Lb_algos.Yang_anderson.algorithm ]
      ~ns:[ 2; 3 ] ()
  in
  let s = render t in
  Alcotest.(check bool) "mentions algo" true (contains s "yang_anderson");
  Alcotest.(check bool) "exhaustive at n=3" true (contains s "yes");
  Alcotest.(check bool) "no distinctness failure" false (contains s "NO!")

let test_e2 () =
  let t =
    Lb_exp.E2_encoding_ratio.table ~seed:1 ~budget:4
      ~algos:[ Lb_algos.Bakery.algorithm ]
      ~ns:[ 2; 4 ] ()
  in
  Alcotest.(check bool) "has rows" true (contains (render t) "bakery")

let test_e3 () =
  let t = Lb_exp.E3_tightness.table ~ns:[ 2; 4; 8 ] () in
  let s = render t in
  (* cost = 6 n levels appears verbatim for n=8: 144 *)
  Alcotest.(check bool) "6*8*3" true (contains s "144")

let test_e4 () =
  let t =
    Lb_exp.E4_algorithms.table ~ns:[ 2; 4 ]
      ~algos:[ Lb_algos.Yang_anderson.algorithm; Lb_algos.Bakery.algorithm ]
      ()
  in
  let s = render t in
  Alcotest.(check bool) "sequential row" true (contains s "sequential");
  Alcotest.(check bool) "contended row" true (contains s "contended-rr")

let test_e5 () =
  let t =
    Lb_exp.E5_anatomy.table ~seed:1
      ~algos:[ Lb_algos.Yang_anderson.algorithm ]
      ~ns:[ 4 ] ()
  in
  Alcotest.(check bool) "has signature column" true (contains (render t) "sig bits")

let test_e6 () =
  let t = Lb_exp.E6_cost_models.table ~n:4 ~algos:[ Lb_algos.Rmw_locks.ticket ] () in
  Alcotest.(check bool) "has ticket" true (contains (render t) "ticket")

let test_e7 () =
  let t = Lb_exp.E7_injectivity.table ~max_n:3 ~algo:Lb_algos.Yang_anderson.algorithm () in
  let s = render t in
  Alcotest.(check bool) "2/2" true (contains s "2/2");
  Alcotest.(check bool) "6/6" true (contains s "6/6")

let test_e8_divergence () =
  (* the quantitative claim: raw grows with the budget, SC does not *)
  let t =
    Lb_exp.E8_unbounded.table ~n:4 ~budgets:[ 0; 512 ]
      ~algo:Lb_algos.Yang_anderson.algorithm ()
  in
  ignore (render t);
  let run budget =
    let exec =
      Lb_exp.E8_unbounded.run_with_budget Lb_algos.Yang_anderson.algorithm ~n:4
        ~spin_budget:budget
    in
    Lb_cost.Accounting.breakdown Lb_algos.Yang_anderson.algorithm ~n:4 exec
  in
  let b0 = run 0 and b1 = run 2048 in
  Alcotest.(check bool) "raw diverges" true
    (b1.Lb_cost.Accounting.shared_accesses
    > b0.Lb_cost.Accounting.shared_accesses + 1000);
  Alcotest.(check bool) "sc bounded" true
    (abs (b1.Lb_cost.Accounting.sc - b0.Lb_cost.Accounting.sc) < 32)

let test_e11 () =
  let t =
    Lb_exp.E11_cc_direction.table ~seed:1
      ~algos:[ Lb_algos.Yang_anderson.algorithm ]
      ~ns:[ 4; 8 ] ()
  in
  Alcotest.(check bool) "has CC column" true (contains (render t) "CC/SC")

let test_e12 () =
  let t =
    Lb_exp.E12_space.table ~ns:[ 2; 4; 8; 16; 32; 64; 128 ]
      ~algos:[ Lb_algos.Burns.algorithm; Lb_algos.Yang_anderson.algorithm ]
      ()
  in
  let s = render t in
  (* burns uses exactly n registers (Burns-Lynch optimal) and the
     classifier must call yang_anderson's space n log n *)
  Alcotest.(check bool) "burns row" true (contains s "burns");
  Alcotest.(check bool) "ya n log n" true (contains s "Theta(n log n)")

let test_experiment_ids () =
  Alcotest.(check (list string)) "ids"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13" ]
    (List.map fst Lb_exp.Exp_all.experiments)

let test_perms_for () =
  let perms, exhaustive = Lb_exp.Exp_common.perms_for ~seed:1 ~n:3 ~budget:24 in
  Alcotest.(check bool) "exhaustive small" true exhaustive;
  Alcotest.(check int) "all 6" 6 (List.length perms);
  let perms, exhaustive = Lb_exp.Exp_common.perms_for ~seed:1 ~n:9 ~budget:10 in
  Alcotest.(check bool) "sampled large" false exhaustive;
  Alcotest.(check int) "10 sampled" 10 (List.length perms);
  Alcotest.(check int) "distinct" 10
    (List.length
       (List.sort_uniq compare (List.map Lb_core.Permutation.to_array perms)))

let test_perms_for_bad_budget () =
  (* an empty family would feed empty samples to Stats.summarize and
     Pipeline.certify downstream; refuse it at the source *)
  List.iter
    (fun budget ->
      match Lb_exp.Exp_common.perms_for ~seed:1 ~n:4 ~budget with
      | _ -> Alcotest.failf "budget %d accepted" budget
      | exception Invalid_argument _ -> ())
    [ 0; -3 ]

let suite =
  [
    Alcotest.test_case "E1 table" `Quick test_e1;
    Alcotest.test_case "E2 table" `Quick test_e2;
    Alcotest.test_case "E3 table" `Quick test_e3;
    Alcotest.test_case "E4 table" `Quick test_e4;
    Alcotest.test_case "E5 table" `Quick test_e5;
    Alcotest.test_case "E6 table" `Quick test_e6;
    Alcotest.test_case "E7 table" `Quick test_e7;
    Alcotest.test_case "E8 divergence" `Quick test_e8_divergence;
    Alcotest.test_case "E11 table" `Quick test_e11;
    Alcotest.test_case "E12 table" `Quick test_e12;
    Alcotest.test_case "experiment ids" `Quick test_experiment_ids;
    Alcotest.test_case "perms_for" `Quick test_perms_for;
    Alcotest.test_case "perms_for bad budget" `Quick test_perms_for_bad_budget;
  ]
