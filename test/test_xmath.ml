open Lb_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_log2 () =
  check_float "log2 8" 3.0 (Xmath.log2 8.0);
  check_float "log2 1" 0.0 (Xmath.log2 1.0);
  check_float "log2 sqrt2" 0.5 (Xmath.log2 (sqrt 2.0))

let test_ceil_log2 () =
  check_int "1" 0 (Xmath.ceil_log2 1);
  check_int "2" 1 (Xmath.ceil_log2 2);
  check_int "3" 2 (Xmath.ceil_log2 3);
  check_int "4" 2 (Xmath.ceil_log2 4);
  check_int "5" 3 (Xmath.ceil_log2 5);
  check_int "1024" 10 (Xmath.ceil_log2 1024);
  check_int "1025" 11 (Xmath.ceil_log2 1025);
  Alcotest.check_raises "0 raises" (Invalid_argument "Xmath.ceil_log2: nonpositive")
    (fun () -> ignore (Xmath.ceil_log2 0))

let test_floor_log2 () =
  check_int "1" 0 (Xmath.floor_log2 1);
  check_int "2" 1 (Xmath.floor_log2 2);
  check_int "3" 1 (Xmath.floor_log2 3);
  check_int "4" 2 (Xmath.floor_log2 4);
  check_int "1023" 9 (Xmath.floor_log2 1023);
  check_int "1024" 10 (Xmath.floor_log2 1024)

let test_powers_of_two () =
  check_bool "1" true (Xmath.is_power_of_two 1);
  check_bool "2" true (Xmath.is_power_of_two 2);
  check_bool "3" false (Xmath.is_power_of_two 3);
  check_bool "0" false (Xmath.is_power_of_two 0);
  check_bool "-4" false (Xmath.is_power_of_two (-4));
  check_int "next 1" 1 (Xmath.next_power_of_two 1);
  check_int "next 3" 4 (Xmath.next_power_of_two 3);
  check_int "next 4" 4 (Xmath.next_power_of_two 4);
  check_int "next 100" 128 (Xmath.next_power_of_two 100)

let test_pow () =
  check_int "2^10" 1024 (Xmath.pow 2 10);
  check_int "3^0" 1 (Xmath.pow 3 0);
  check_int "7^3" 343 (Xmath.pow 7 3);
  check_int "1^50" 1 (Xmath.pow 1 50)

let test_factorial () =
  check_int "0!" 1 (Xmath.factorial 0);
  check_int "1!" 1 (Xmath.factorial 1);
  check_int "5!" 120 (Xmath.factorial 5);
  check_int "10!" 3628800 (Xmath.factorial 10);
  check_int "20!" 2432902008176640000 (Xmath.factorial 20)

let test_log2_factorial () =
  check_float "log2 0!" 0.0 (Xmath.log2_factorial 0);
  check_float "log2 1!" 0.0 (Xmath.log2_factorial 1);
  Alcotest.(check (float 1e-6))
    "log2 5! matches direct" (Xmath.log2 120.0) (Xmath.log2_factorial 5);
  Alcotest.(check (float 1e-6))
    "log2 10! matches direct" (Xmath.log2 3628800.0) (Xmath.log2_factorial 10);
  (* Stirling sanity: n log n - n log2 e <= log2 n! <= n log n for n >= 1 *)
  List.iter
    (fun n ->
      let l = Xmath.log2_factorial n in
      let nl = Xmath.n_log2_n n in
      Alcotest.(check bool)
        (Printf.sprintf "stirling upper n=%d" n)
        true (l <= nl +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "stirling lower n=%d" n)
        true
        (l >= nl -. (float_of_int n *. Xmath.log2 (exp 1.0)) -. 1e-9))
    [ 2; 8; 64; 1000 ]

let test_n_log2_n () =
  check_float "0" 0.0 (Xmath.n_log2_n 0);
  check_float "1" 0.0 (Xmath.n_log2_n 1);
  check_float "8" 24.0 (Xmath.n_log2_n 8)

let test_harmonic () =
  check_float "H_1" 1.0 (Xmath.harmonic 1);
  check_float "H_2" 1.5 (Xmath.harmonic 2);
  Alcotest.(check (float 1e-9)) "H_4" (25.0 /. 12.0) (Xmath.harmonic 4)

let test_clamp () =
  check_int "below" 1 (Xmath.clamp ~lo:1 ~hi:5 0);
  check_int "inside" 3 (Xmath.clamp ~lo:1 ~hi:5 3);
  check_int "above" 5 (Xmath.clamp ~lo:1 ~hi:5 9);
  check_int "imin" 2 (Xmath.imin 2 7);
  check_int "imax" 7 (Xmath.imax 2 7)

let suite =
  [
    Alcotest.test_case "log2" `Quick test_log2;
    Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
    Alcotest.test_case "floor_log2" `Quick test_floor_log2;
    Alcotest.test_case "powers of two" `Quick test_powers_of_two;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "factorial" `Quick test_factorial;
    Alcotest.test_case "log2_factorial" `Quick test_log2_factorial;
    Alcotest.test_case "n_log2_n" `Quick test_n_log2_n;
    Alcotest.test_case "harmonic" `Quick test_harmonic;
    Alcotest.test_case "clamp/imin/imax" `Quick test_clamp;
  ]
