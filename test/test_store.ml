(* The durable sweep subsystem: content-addressed keys, entry/manifest
   serialization, corruption handling, and the checkpointed sweep engine
   (cold/warm/interrupted runs must all converge on byte-identical
   manifests and certificates). *)

module Store = Lb_store.Store
module Store_key = Lb_store.Store_key
module Manifest = Lb_store.Manifest
module Sweep = Lb_store.Sweep

let ya = Lb_algos.Yang_anderson.algorithm
let bakery = Lb_algos.Bakery.algorithm
let broken = Lb_algos.Broken_spinlock.algorithm

(* every test gets its own throwaway store root under $TMPDIR *)
let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d = Filename.temp_file "mutexlb_store" (Printf.sprintf "_%d" !ctr) in
    Sys.remove d;
    d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Store.open_ ~dir))

(* substring index / first-occurrence replacement, for the hand-mangled
   corruption fixtures *)
let find_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then Alcotest.fail ("fixture lacks " ^ needle)
    else if String.sub haystack i nn = needle then i
    else go (i + 1)
  in
  go 0

let replace_first haystack needle replacement =
  let i = find_sub haystack needle in
  String.sub haystack 0 i
  ^ replacement
  ^ String.sub haystack
      (i + String.length needle)
      (String.length haystack - i - String.length needle)

let perms_of n = Lb_core.Permutation.all n

let entry_of ?(save_trace = false) algo ~n pi =
  let r = Lb_core.Pipeline.run_checked algo ~n pi in
  let open Lb_core.Pipeline in
  {
    Store.e_algo = algo.Lb_shmem.Algorithm.name;
    e_fp = Store_key.fingerprint algo ~n;
    e_n = n;
    e_pi = pi;
    e_model = Store_key.sc_model;
    e_cost = r.cost;
    e_bits = r.bits;
    e_exec_fp = Lb_shmem.Execution.fingerprint r.decoded;
    e_ebits =
      (if save_trace then
         Some r.encoding.Lb_core.Encode.bits
       else None);
  }

(* ------------------------------ keys --------------------------------- *)

let test_key_stability () =
  let fp = Store_key.fingerprint ya ~n:3 in
  let pi = Lb_core.Permutation.of_array [| 2; 0; 1 |] in
  let k1 = Store_key.derive ~fp ~algo:"yang_anderson" ~n:3 ~pi ~model:Store_key.sc_model in
  let k2 = Store_key.derive ~fp ~algo:"yang_anderson" ~n:3 ~pi ~model:Store_key.sc_model in
  Alcotest.(check string) "deterministic" k1 k2;
  Alcotest.(check bool) "well-formed" true (Store_key.is_key k1);
  let pi' = Lb_core.Permutation.of_array [| 0; 2; 1 |] in
  let k3 = Store_key.derive ~fp ~algo:"yang_anderson" ~n:3 ~pi:pi' ~model:Store_key.sc_model in
  Alcotest.(check bool) "pi-sensitive" true (k1 <> k3);
  let k4 = Store_key.derive ~fp ~algo:"other" ~n:3 ~pi ~model:Store_key.sc_model in
  Alcotest.(check bool) "algo-sensitive" true (k1 <> k4);
  let k5 = Store_key.derive ~fp:"deadbeef" ~algo:"yang_anderson" ~n:3 ~pi ~model:Store_key.sc_model in
  Alcotest.(check bool) "fp-sensitive" true (k1 <> k5);
  Alcotest.(check bool) "not a key" false (Store_key.is_key "not-a-key");
  Alcotest.(check bool) "wrong length" false (Store_key.is_key "abc123")

let test_fingerprint_sensitivity () =
  (* the behavioral fingerprint separates algorithms and sizes: a stale
     entry can never be addressed by a current-code key *)
  let fp_ya3 = Store_key.fingerprint ya ~n:3 in
  Alcotest.(check string) "deterministic" fp_ya3 (Store_key.fingerprint ya ~n:3);
  Alcotest.(check bool) "algo-sensitive" true
    (fp_ya3 <> Store_key.fingerprint bakery ~n:3);
  Alcotest.(check bool) "n-sensitive" true
    (fp_ya3 <> Store_key.fingerprint ya ~n:4)

(* --------------------------- entry round trip ------------------------ *)

let check_entry_eq msg (a : Store.entry) (b : Store.entry) =
  Alcotest.(check string) (msg ^ " algo") a.Store.e_algo b.Store.e_algo;
  Alcotest.(check string) (msg ^ " fp") a.Store.e_fp b.Store.e_fp;
  Alcotest.(check int) (msg ^ " n") a.Store.e_n b.Store.e_n;
  Alcotest.(check string) (msg ^ " pi")
    (Lb_core.Permutation.to_string a.Store.e_pi)
    (Lb_core.Permutation.to_string b.Store.e_pi);
  Alcotest.(check int) (msg ^ " cost") a.Store.e_cost b.Store.e_cost;
  Alcotest.(check int) (msg ^ " bits") a.Store.e_bits b.Store.e_bits;
  Alcotest.(check string) (msg ^ " exec") a.Store.e_exec_fp b.Store.e_exec_fp;
  Alcotest.(check (option (array bool)))
    (msg ^ " ebits") a.Store.e_ebits b.Store.e_ebits

let test_entry_roundtrip () =
  with_store (fun st ->
      let pi = Lb_core.Permutation.of_array [| 1; 2; 0 |] in
      let e = entry_of ya ~n:3 pi in
      let key = Store.key_of_entry e in
      Alcotest.(check bool) "absent before put" true (Store.lookup st ~key = `Absent);
      Store.put st e;
      (match Store.lookup st ~key with
      | `Hit e' -> check_entry_eq "plain" e e'
      | `Absent | `Damaged _ -> Alcotest.fail "expected a hit");
      (* with the E_pi trace attached *)
      let et = entry_of ~save_trace:true ya ~n:3 pi in
      Store.put st et;
      (match Store.lookup st ~key with
      | `Hit e' ->
        check_entry_eq "traced" et e';
        Alcotest.(check bool) "trace present" true (e'.Store.e_ebits <> None)
      | `Absent | `Damaged _ -> Alcotest.fail "expected a traced hit");
      Store.remove st ~key;
      Alcotest.(check bool) "absent after remove" true
        (Store.lookup st ~key = `Absent))

let test_fold_and_stat () =
  with_store (fun st ->
      List.iter (fun pi -> Store.put st (entry_of ya ~n:3 pi)) (perms_of 3);
      Store.put st (entry_of ~save_trace:true bakery ~n:3 (List.hd (perms_of 3)));
      let n = Store.fold st ~init:0 ~f:(fun acc ~key:_ -> function
          | Ok _ -> acc + 1
          | Error _ -> acc)
      in
      Alcotest.(check int) "fold sees all" 7 n;
      let s = Store.stat st in
      Alcotest.(check int) "entries" 7 s.Store.s_entries;
      Alcotest.(check int) "damaged" 0 s.Store.s_damaged;
      Alcotest.(check int) "with trace" 1 s.Store.s_with_trace;
      Alcotest.(check bool) "bytes counted" true (s.Store.s_bytes > 0);
      Alcotest.(check (list (triple string int int)))
        "by algo"
        [ ("bakery", 3, 1); ("yang_anderson", 3, 6) ]
        s.Store.s_by_algo)

(* ----------------------------- corruption ---------------------------- *)

let damaged_diag = function
  | `Damaged msg -> msg
  | `Hit _ -> Alcotest.fail "expected damage, got a hit"
  | `Absent -> Alcotest.fail "expected damage, got absent"

let overwrite path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

(* rebuild a valid sum line over a hand-mangled payload, so the tests
   reach the field-level diagnostics behind the checksum gate *)
let with_fresh_sum payload =
  payload ^ Printf.sprintf "sum %s\n" (Digest.to_hex (Digest.string payload))

let strip_sum s =
  match String.rindex_opt (String.sub s 0 (String.length s - 1)) '\n' with
  | Some i -> String.sub s 0 (i + 1)
  | None -> s

let test_corruption_truncated () =
  with_store (fun st ->
      let e = entry_of ya ~n:3 (List.hd (perms_of 3)) in
      let key = Store.key_of_entry e in
      Store.put st e;
      let path = Store.object_path st ~key in
      let full = In_channel.with_open_bin path In_channel.input_all in
      overwrite path (String.sub full 0 (String.length full / 2));
      let diag = damaged_diag (Store.lookup st ~key) in
      Alcotest.(check bool) ("diagnosed: " ^ diag) true
        (String.length diag > 0);
      (* empty file: also damage, not a crash *)
      overwrite path "";
      ignore (damaged_diag (Store.lookup st ~key)))

let test_corruption_flipped_bit () =
  with_store (fun st ->
      let e = entry_of ya ~n:3 (List.hd (perms_of 3)) in
      let key = Store.key_of_entry e in
      Store.put st e;
      let path = Store.object_path st ~key in
      let full = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string full in
      (* flip a digit inside the cost field *)
      let i = find_sub full "cost " + 5 in
      Bytes.set b i (if Bytes.get b i = '1' then '2' else '1');
      overwrite path (Bytes.to_string b);
      let diag = damaged_diag (Store.lookup st ~key) in
      Alcotest.(check bool) "names the checksum" true
        (Astring_contains.contains diag "checksum"))

let test_corruption_stale_version () =
  with_store (fun st ->
      let e = entry_of ya ~n:3 (List.hd (perms_of 3)) in
      let key = Store.key_of_entry e in
      let s = Store.entry_to_string e in
      let payload = strip_sum s in
      let mangled =
        replace_first payload "mutexlb-store-entry 1"
          "mutexlb-store-entry 99"
      in
      (match Store.entry_of_string ~key (with_fresh_sum mangled) with
      | Error diag ->
        Alcotest.(check bool) "names the version" true
          (Astring_contains.contains diag "stale format version")
      | Ok _ -> Alcotest.fail "stale version accepted");
      (* and through the store: written file with stale version is damage *)
      Store.put st e;
      overwrite (Store.object_path st ~key) (with_fresh_sum mangled);
      let diag = damaged_diag (Store.lookup st ~key) in
      Alcotest.(check bool) "store reports it" true
        (Astring_contains.contains diag "stale format version"))

let test_corruption_garbage_hex () =
  let e = entry_of ~save_trace:true ya ~n:3 (List.hd (perms_of 3)) in
  let key = Store.key_of_entry e in
  let payload = strip_sum (Store.entry_to_string e) in
  (* splatter a non-hex character into the ebits line *)
  let i = find_sub payload "ebits " in
  let j = String.index_from payload i '\n' in
  let b = Bytes.of_string payload in
  Bytes.set b (j - 1) 'z';
  match Store.entry_of_string ~key (with_fresh_sum (Bytes.to_string b)) with
  | Error diag ->
    Alcotest.(check bool) "names the hex" true
      (Astring_contains.contains diag "hex")
  | Ok _ -> Alcotest.fail "garbage hex accepted"

let test_corruption_wrong_key () =
  with_store (fun st ->
      let pis = perms_of 3 in
      let e1 = entry_of ya ~n:3 (List.nth pis 0) in
      let e2 = entry_of ya ~n:3 (List.nth pis 1) in
      Store.put st e1;
      Store.put st e2;
      let k1 = Store.key_of_entry e1 and k2 = Store.key_of_entry e2 in
      (* file e1's bytes under e2's name: both key checks must catch it *)
      let s1 =
        In_channel.with_open_bin (Store.object_path st ~key:k1)
          In_channel.input_all
      in
      overwrite (Store.object_path st ~key:k2) s1;
      let diag = damaged_diag (Store.lookup st ~key:k2) in
      Alcotest.(check bool) "names the mismatch" true
        (Astring_contains.contains diag "filed under"))

(* ------------------------------ manifest ----------------------------- *)

let test_manifest_roundtrip () =
  let pis = perms_of 3 in
  let fp = Store_key.fingerprint ya ~n:3 in
  let key pi = Store_key.derive ~fp ~algo:"yang_anderson" ~n:3 ~pi ~model:Store_key.sc_model in
  let m =
    {
      Manifest.m_algo = "yang_anderson";
      m_fp = fp;
      m_n = 3;
      m_model = Store_key.sc_model;
      m_total = List.length pis;
      m_outcomes =
        List.mapi
          (fun i pi ->
            let k = key pi in
            let o =
              if i = 0 then Manifest.Failed (k, "boom\nwith \"newline\"")
              else if i = 1 then Manifest.Pending k
              else Manifest.Done k
            in
            (pi, o))
          pis;
    }
  in
  let s = Manifest.to_string m in
  (match Manifest.of_string s with
  | Ok m' ->
    Alcotest.(check string) "reserializes identically" s (Manifest.to_string m');
    Alcotest.(check (triple int int int)) "counts" (4, 1, 1) (Manifest.counts m')
  | Error e -> Alcotest.fail ("manifest parse: " ^ e));
  (* atomic save / load through a real file *)
  let path = Filename.temp_file "mutexlb_manifest" ".manifest" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Manifest.save ~path m;
      match Manifest.load ~path with
      | Ok m' -> Alcotest.(check string) "file roundtrip" s (Manifest.to_string m')
      | Error e -> Alcotest.fail ("manifest load: " ^ e))

(* ------------------------------- sweeps ------------------------------ *)

let render_cert = function
  | Some c -> Format.asprintf "%a" Lb_core.Bounds.pp_certificate c
  | None -> Alcotest.fail "sweep produced no certificate"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_sweep_cold_warm () =
  with_store (fun st ->
      let perms = perms_of 4 in
      let direct = Lb_core.Pipeline.certify ya ~n:4 ~perms ~exhaustive:true () in
      let direct_s = Format.asprintf "%a" Lb_core.Bounds.pp_certificate direct in
      let cold_cert, cold = Sweep.certify ~store:st ya ~n:4 ~perms ~exhaustive:true () in
      let warm_cert, warm = Sweep.certify ~store:st ya ~n:4 ~perms ~exhaustive:true () in
      Alcotest.(check string) "cold = direct" direct_s (render_cert cold_cert);
      Alcotest.(check string) "warm = direct" direct_s (render_cert warm_cert);
      let cp = cold.Sweep.progress and wp = warm.Sweep.progress in
      Alcotest.(check int) "cold computed all" 24 cp.Sweep.p_computed;
      Alcotest.(check int) "cold no hits" 0 cp.Sweep.p_hits;
      Alcotest.(check int) "warm all hits" 24 wp.Sweep.p_hits;
      Alcotest.(check int) "warm computed none" 0 wp.Sweep.p_computed;
      Alcotest.(check string) "manifest stable"
        (read_file cold.Sweep.manifest_path)
        (read_file warm.Sweep.manifest_path);
      (* the final manifest records every unit Done *)
      match Manifest.load ~path:cold.Sweep.manifest_path with
      | Ok m -> Alcotest.(check (triple int int int)) "all done" (24, 0, 0) (Manifest.counts m)
      | Error e -> Alcotest.fail ("manifest: " ^ e))

let test_sweep_interrupted_resume () =
  (* an "interrupted" run = only a prefix of the family made it to disk;
     the re-run must produce a manifest and certificate byte-identical to
     a never-interrupted sweep, at every job count *)
  let perms = perms_of 4 in
  let uninterrupted_manifest, uninterrupted_cert =
    with_store (fun st ->
        let cert, r = Sweep.certify ~store:st ya ~n:4 ~perms ~exhaustive:true () in
        (read_file r.Sweep.manifest_path, render_cert cert))
  in
  List.iter
    (fun jobs ->
      with_store (fun st ->
          (* simulate the interruption: persist only the first 7 units *)
          List.iteri
            (fun i pi -> if i < 7 then Store.put st (entry_of ya ~n:4 pi))
            perms;
          let cert, r =
            Sweep.certify ~store:st ~jobs ya ~n:4 ~perms ~exhaustive:true ()
          in
          let p = r.Sweep.progress in
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d hits" jobs) 7 p.Sweep.p_hits;
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d computed" jobs) 17 p.Sweep.p_computed;
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d manifest identical" jobs)
            uninterrupted_manifest
            (read_file r.Sweep.manifest_path);
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d certificate identical" jobs)
            uninterrupted_cert (render_cert cert)))
    [ 1; 4 ]

let test_sweep_recomputes_damage () =
  with_store (fun st ->
      let perms = perms_of 3 in
      let _, cold = Sweep.certify ~store:st ya ~n:3 ~perms ~exhaustive:true () in
      (* truncate one entry on disk *)
      let victim =
        Store_key.derive
          ~fp:(Store_key.fingerprint ya ~n:3)
          ~algo:"yang_anderson" ~n:3 ~pi:(List.nth perms 2)
          ~model:Store_key.sc_model
      in
      let path = Store.object_path st ~key:victim in
      overwrite path (String.sub (read_file path) 0 10);
      let damaged_seen = ref 0 in
      let on_event = function
        | Sweep.Damaged_entry _ -> incr damaged_seen
        | _ -> ()
      in
      let cert, warm = Sweep.certify ~store:st ~on_event ya ~n:3 ~perms ~exhaustive:true () in
      let p = warm.Sweep.progress in
      Alcotest.(check int) "damage surfaced" 1 !damaged_seen;
      Alcotest.(check int) "5 hits" 5 p.Sweep.p_hits;
      Alcotest.(check int) "1 recomputed" 1 p.Sweep.p_computed;
      Alcotest.(check string) "manifest unchanged"
        (read_file cold.Sweep.manifest_path)
        (read_file warm.Sweep.manifest_path);
      ignore (render_cert cert);
      (* the store self-healed: the victim entry is valid again *)
      match Store.lookup st ~key:victim with
      | `Hit _ -> ()
      | `Absent | `Damaged _ -> Alcotest.fail "damaged entry not rewritten")

let test_sweep_quarantine () =
  with_store (fun st ->
      let perms = perms_of 3 in
      (* fail-fast without ~resume, exactly like Pipeline.certify *)
      (match Sweep.sweep ~store:st broken ~n:3 ~perms () with
      | _ -> Alcotest.fail "expected the broken pipeline to raise"
      | exception Lb_core.Pipeline.Check_failed _ -> ());
      (* with ~resume the failures are quarantined and the family finishes *)
      let cert, r = Sweep.certify ~store:st ~resume:true broken ~n:3 ~perms () in
      let p = r.Sweep.progress in
      Alcotest.(check bool) "some failures" true (p.Sweep.p_failed > 0);
      Alcotest.(check int) "family complete" 6 p.Sweep.p_done;
      Alcotest.(check int) "records + failures = total" 6
        (List.length r.Sweep.records + List.length r.Sweep.failures);
      (match Manifest.load ~path:r.Sweep.manifest_path with
      | Ok m ->
        let done_, failed, pending = Manifest.counts m in
        Alcotest.(check int) "manifest failed" p.Sweep.p_failed failed;
        Alcotest.(check int) "manifest done" (6 - p.Sweep.p_failed) done_;
        Alcotest.(check int) "nothing pending" 0 pending
      | Error e -> Alcotest.fail ("manifest: " ^ e));
      if p.Sweep.p_failed = 6 then
        Alcotest.(check bool) "no certificate when all fail" true (cert = None)
      else Alcotest.(check bool) "partial certificate" true (cert <> None);
      (* second resume run: successes come from cache, failures recompute
         (failed units are never persisted) and fail identically *)
      let _, r2 = Sweep.certify ~store:st ~resume:true broken ~n:3 ~perms () in
      let p2 = r2.Sweep.progress in
      Alcotest.(check int) "hits = prior successes" (6 - p.Sweep.p_failed)
        p2.Sweep.p_hits;
      Alcotest.(check int) "failures reproduce" p.Sweep.p_failed p2.Sweep.p_failed;
      Alcotest.(check string) "manifest stable under resume"
        (read_file r.Sweep.manifest_path)
        (read_file r2.Sweep.manifest_path))

let test_sweep_pi_timeout () =
  with_store (fun st ->
      let perms = perms_of 3 in
      (* an impossibly tight budget: every unit overruns, and with
         ~resume each is quarantined instead of cached *)
      let _, r =
        Sweep.certify ~store:st ~resume:true ~pi_timeout:1e-9 ya ~n:3 ~perms ()
      in
      let p = r.Sweep.progress in
      Alcotest.(check int) "every unit quarantined" 6 p.Sweep.p_failed;
      List.iter
        (fun f ->
          Alcotest.(check string) "message names the limit, not the elapsed time"
            "per-pi wall-clock limit exceeded (1e-09s)" f.Sweep.f_message)
        r.Sweep.failures;
      (* capture now: the successful re-run below overwrites this path *)
      let quarantined_manifest = read_file r.Sweep.manifest_path in
      (* timed-out units were never persisted: a run without the budget
         computes everything fresh and succeeds *)
      let cert, r2 = Sweep.certify ~store:st ya ~n:3 ~perms () in
      Alcotest.(check int) "no stale hits" 0 r2.Sweep.progress.Sweep.p_hits;
      Alcotest.(check bool) "certificate recovered" true (cert <> None);
      (* deterministic manifests: a second timed-out sweep is byte-identical *)
      with_store (fun st2 ->
          let _, ra =
            Sweep.certify ~store:st2 ~resume:true ~pi_timeout:1e-9 ya ~n:3 ~perms ()
          in
          Alcotest.(check string) "manifest reproducible" quarantined_manifest
            (read_file ra.Sweep.manifest_path));
      (* without ~resume the timeout propagates fail-fast *)
      with_store (fun st3 ->
          match Sweep.sweep ~store:st3 ~pi_timeout:1e-9 ya ~n:3 ~perms () with
          | _ -> Alcotest.fail "expected Pi_timeout"
          | exception Sweep.Pi_timeout { limit; _ } ->
            Alcotest.(check (float 0.0)) "limit carried" 1e-9 limit);
      (* a non-positive budget is a usage error *)
      match Sweep.sweep ~store:st ~pi_timeout:0.0 ya ~n:3 ~perms () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_sweep_events_json () =
  with_store (fun st ->
      let events = Buffer.create 256 in
      let on_event ev =
        Buffer.add_string events (Sweep.event_to_json ev);
        Buffer.add_char events '\n'
      in
      let _, _ = Sweep.certify ~store:st ~on_event ya ~n:3 ~perms:(perms_of 3) ~exhaustive:true () in
      let lines =
        String.split_on_char '\n' (Buffer.contents events)
        |> List.filter (fun l -> l <> "")
      in
      (* start + 6 items + final checkpoint + finished, every line a JSON object *)
      Alcotest.(check bool) "enough events" true (List.length lines >= 8);
      List.iter
        (fun l ->
          Alcotest.(check bool) ("object: " ^ l) true
            (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines;
      Alcotest.(check bool) "has start" true
        (Astring_contains.contains (List.hd lines) "\"start\"");
      Alcotest.(check bool) "has finished" true
        (Astring_contains.contains
           (List.nth lines (List.length lines - 1))
           "\"finished\""))

(* checkpoint_every is a real parameter: the cadence of Checkpoint
   events tracks it exactly (jobs=1 makes the event order deterministic) *)
let test_sweep_checkpoint_every () =
  with_store (fun st ->
      let cps = ref 0 in
      let on_event = function Sweep.Checkpoint _ -> incr cps | _ -> () in
      let _ =
        Sweep.sweep ~store:st ~jobs:1 ~checkpoint_every:1 ~on_event ya ~n:3
          ~perms:(perms_of 3) ()
      in
      Alcotest.(check int) "one checkpoint per completion" 6 !cps;
      with_store (fun st2 ->
          let cps2 = ref 0 in
          let on_event = function Sweep.Checkpoint _ -> incr cps2 | _ -> () in
          let _ =
            Sweep.sweep ~store:st2 ~jobs:1 ~checkpoint_every:1000 ~on_event ya
              ~n:3 ~perms:(perms_of 3) ()
          in
          Alcotest.(check int) "wide interval: only the final checkpoint" 1
            !cps2);
      match
        Sweep.sweep ~store:st ~checkpoint_every:0 ya ~n:3 ~perms:(perms_of 3) ()
      with
      | _ -> Alcotest.fail "checkpoint_every = 0 accepted"
      | exception Invalid_argument _ -> ())

(* the loss-window bugfix: a quarantined failure is durable the moment it
   is recorded, even when the periodic checkpoint interval is far wider
   than the family — a crash right after the failure can no longer forget
   the quarantine and re-run the non-idempotent unit on resume. The
   Checkpoint event fires before the failure's own Item event, so by the
   time we observe the failure the on-disk manifest must already carry it. *)
let test_sweep_failure_checkpoint_eager () =
  with_store (fun st ->
      let mpath = ref None in
      let failed_so_far = ref 0 in
      let on_event = function
        | Sweep.Checkpoint { manifest; _ } -> mpath := Some manifest
        | Sweep.Item { outcome = Sweep.Failed _; _ } -> (
          incr failed_so_far;
          match !mpath with
          | None -> Alcotest.fail "failure completed without a checkpoint"
          | Some path -> (
            match Manifest.load ~path with
            | Ok m ->
              let _, failed, _ = Manifest.counts m in
              Alcotest.(check int) "manifest already records the failure"
                !failed_so_far failed
            | Error e -> Alcotest.fail ("manifest: " ^ e)))
        | _ -> ()
      in
      let _, r =
        Sweep.certify ~store:st ~resume:true ~jobs:1 ~checkpoint_every:1000
          ~on_event broken ~n:3 ~perms:(perms_of 3) ()
      in
      Alcotest.(check bool) "some failures to exercise the path" true
        (r.Sweep.progress.Sweep.p_failed > 0))

let test_sweep_rejects_bad_input () =
  with_store (fun st ->
      (match Sweep.sweep ~store:st ya ~n:3 ~perms:[] () with
      | _ -> Alcotest.fail "empty family accepted"
      | exception Invalid_argument _ -> ());
      match Sweep.sweep ~store:st Lb_algos.Rmw_locks.test_and_set ~n:2 ~perms:(perms_of 2) () with
      | _ -> Alcotest.fail "rmw algorithm accepted"
      | exception Invalid_argument _ -> ())

(* ------------------------- experiments plumbing ---------------------- *)

let test_exp_common_store () =
  with_store (fun st ->
      Fun.protect
        ~finally:(fun () -> Lb_exp.Exp_common.set_store None)
        (fun () ->
          Lb_exp.Exp_common.set_store (Some st);
          let perms = perms_of 3 in
          let direct = Lb_core.Pipeline.certify ya ~n:3 ~perms ~exhaustive:true () in
          let c1 = Lb_exp.Exp_common.certify_sweep ya ~n:3 ~perms ~exhaustive:true in
          let c2 = Lb_exp.Exp_common.certify_sweep ya ~n:3 ~perms ~exhaustive:true in
          let s c = Format.asprintf "%a" Lb_core.Bounds.pp_certificate c in
          Alcotest.(check string) "stored = direct" (s direct) (s c1);
          Alcotest.(check string) "warm = direct" (s direct) (s c2);
          Alcotest.(check int) "entries persisted" 6 (Store.stat st).Store.s_entries;
          let rs = Lb_exp.Exp_common.records_for ya ~n:3 perms in
          Alcotest.(check int) "records in family order" 6 (List.length rs);
          List.iter2
            (fun (r : Lb_core.Pipeline.record) pi ->
              Alcotest.(check string) "record pi"
                (Lb_core.Permutation.to_string pi)
                (Lb_core.Permutation.to_string r.Lb_core.Pipeline.r_pi))
            rs perms))

let suite =
  [
    Alcotest.test_case "key stability" `Quick test_key_stability;
    Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
    Alcotest.test_case "entry roundtrip" `Quick test_entry_roundtrip;
    Alcotest.test_case "fold + stat" `Quick test_fold_and_stat;
    Alcotest.test_case "corruption: truncated" `Quick test_corruption_truncated;
    Alcotest.test_case "corruption: flipped bit" `Quick test_corruption_flipped_bit;
    Alcotest.test_case "corruption: stale version" `Quick test_corruption_stale_version;
    Alcotest.test_case "corruption: garbage hex" `Quick test_corruption_garbage_hex;
    Alcotest.test_case "corruption: wrong key" `Quick test_corruption_wrong_key;
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "sweep cold/warm" `Quick test_sweep_cold_warm;
    Alcotest.test_case "sweep interrupted + resumed" `Slow test_sweep_interrupted_resume;
    Alcotest.test_case "sweep recomputes damage" `Quick test_sweep_recomputes_damage;
    Alcotest.test_case "sweep quarantine" `Quick test_sweep_quarantine;
    Alcotest.test_case "sweep pi timeout" `Quick test_sweep_pi_timeout;
    Alcotest.test_case "sweep events json" `Quick test_sweep_events_json;
    Alcotest.test_case "sweep checkpoint cadence" `Quick
      test_sweep_checkpoint_every;
    Alcotest.test_case "sweep failure checkpoints eagerly" `Quick
      test_sweep_failure_checkpoint_eager;
    Alcotest.test_case "sweep rejects bad input" `Quick test_sweep_rejects_bad_input;
    Alcotest.test_case "exp_common store plumbing" `Quick test_exp_common_store;
  ]
