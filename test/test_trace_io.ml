open Lb_shmem
module T = Lb_core.Trace_io
module P = Lb_core.Permutation

let ya = Lb_algos.Yang_anderson.algorithm

let test_execution_roundtrip () =
  let exec = (Lb_mutex.Canonical.run ya ~n:3).Lb_mutex.Canonical.exec in
  let s = T.execution_to_string ~algo:"yang_anderson" ~n:3 exec in
  let algo, n, exec' = T.execution_of_string s in
  Alcotest.(check string) "algo" "yang_anderson" algo;
  Alcotest.(check int) "n" 3 n;
  Alcotest.(check bool) "steps equal" true (Execution.equal exec exec');
  (* the parsed trace replays cleanly *)
  ignore (Execution.replay ya ~n:3 exec')

let test_execution_rmw_roundtrip () =
  let mcs = Lb_algos.Queue_locks.mcs in
  let exec = (Lb_mutex.Canonical.run_round_robin mcs ~n:3).Lb_mutex.Canonical.exec in
  let s = T.execution_to_string ~algo:"mcs" ~n:3 exec in
  let _, _, exec' = T.execution_of_string s in
  Alcotest.(check bool) "rmw steps survive" true (Execution.equal exec exec')

let test_execution_bad_input () =
  let cases =
    [
      ("", "empty");
      ("garbage 1\nalgo x\nn 2\n", "bad magic");
      ("mutexlb-trace 1\nalgo x\nn 0\n", "bad n");
      ("mutexlb-trace 1\nalgo x\nn 2\nstep 5 try\n", "bad pid");
      ("mutexlb-trace 1\nalgo x\nn 2\nstep 0 fly 1\n", "bad action");
      ("mutexlb-trace 1\nalgo x\nn 2\nnope\n", "bad line");
    ]
  in
  List.iter
    (fun (input, label) ->
      match T.execution_of_string input with
      | _ -> Alcotest.failf "%s accepted" label
      | exception T.Parse_error _ -> ())
    cases

let expect_error_at label input parse expected_line =
  match parse input with
  | _ -> Alcotest.failf "%s accepted" label
  | exception T.Parse_error { line; _ } ->
    Alcotest.(check int) (label ^ " line number") expected_line line

let test_error_line_numbers () =
  (* regression: blank lines used to be filtered before numbering, and
     header errors hardcoded lines 1-4, so errors in files with blank
     separators pointed at the wrong physical line *)
  let e = expect_error_at in
  let exec = T.execution_of_string and bits = T.bits_of_string in
  (* bad step pid on physical line 9 (blank lines at 2, 4, 6, 8) *)
  e "bad pid after blanks"
    "mutexlb-trace 1\n\nalgo x\n\nn 2\n\nstep 0 try\n\nstep 9 try\n" exec 9;
  (* bad action keyword on physical line 5 *)
  e "bad action after blank" "mutexlb-trace 1\nalgo x\nn 2\n\nstep 0 fly\n" exec 5;
  (* bad magic shifted down by leading blank lines *)
  e "bad magic at line 3" "\n\ngarbage 1\nalgo x\nn 2\n" exec 3;
  (* bad n on physical line 5, not hardcoded 3 *)
  e "bad n at line 5" "mutexlb-trace 1\n\nalgo x\n\nn 0\n" exec 5;
  (* malformed algo line reported where it is *)
  e "bad algo at line 2" "mutexlb-trace 1\nalgorithm x\nn 2\n" exec 2;
  (* bits line errors use the physical bits line *)
  e "bad hex at line 6" "mutexlb-bits 1\nalgo x\nn 2\n\n\nbits 8 z0\n" bits 6;
  (* missing lines point just past the end of input *)
  e "missing n" "mutexlb-trace 1\nalgo x\n" exec 4;
  e "missing bits line" "mutexlb-bits 1\nalgo x\nn 2\n" bits 5

let test_blank_lines_accepted () =
  (* blank and whitespace-only lines are still skipped, not errors *)
  let algo, n, exec =
    T.execution_of_string
      "mutexlb-trace 1\n\nalgo x\n   \nn 2\n\nstep 0 try\n\nstep 1 try\n\n"
  in
  Alcotest.(check string) "algo" "x" algo;
  Alcotest.(check int) "n" 2 n;
  Alcotest.(check int) "steps" 2 (Execution.length exec)

let test_bits_padding_canonical () =
  (* 5 bits -> 2 hex digits, 3 padding bits in the final digit. The
     writer zero-fills them; nonzero padding must be rejected or
     distinct strings would decode to the same bits (non-injective). *)
  let ok = "mutexlb-bits 1\nalgo x\nn 2\nbits 5 88\n" in
  let _, _, decoded = T.bits_of_string ok in
  Alcotest.(check bool) "canonical accepted" true
    (decoded = [| true; false; false; false; true |]);
  List.iter
    (fun (input, label) ->
      expect_error_at label input T.bits_of_string 4)
    [
      ("mutexlb-bits 1\nalgo x\nn 2\nbits 5 89\n", "low padding bit set");
      ("mutexlb-bits 1\nalgo x\nn 2\nbits 5 8c\n", "high padding bit set");
      ("mutexlb-bits 1\nalgo x\nn 2\nbits 2 1\n", "two-bit padding set");
    ]

let test_bits_roundtrip () =
  let r = Lb_core.Pipeline.run ya ~n:4 (P.reverse 4) in
  let bits = r.Lb_core.Pipeline.encoding.Lb_core.Encode.bits in
  let s = T.bits_to_string ~algo:"yang_anderson" ~n:4 bits in
  let algo, n, bits' = T.bits_of_string s in
  Alcotest.(check string) "algo" "yang_anderson" algo;
  Alcotest.(check int) "n" 4 n;
  Alcotest.(check bool) "bits equal" true (bits = bits');
  (* and the reloaded bits still decode to the same execution *)
  let decoded = Lb_core.Decode.run_bits ya ~n:4 bits' in
  Alcotest.(check bool) "decodes identically" true
    (Execution.equal decoded r.Lb_core.Pipeline.decoded)

let test_bits_odd_lengths () =
  (* exercise hex padding at every bit count mod 4 *)
  List.iter
    (fun len ->
      let bits = Array.init len (fun i -> i mod 3 = 0) in
      let s = T.bits_to_string ~algo:"x" ~n:1 bits in
      let _, _, bits' = T.bits_of_string s in
      Alcotest.(check bool) (Printf.sprintf "len %d" len) true (bits = bits'))
    [ 0; 1; 2; 3; 4; 5; 7; 8; 9; 15; 16; 17 ]

let test_bits_bad_input () =
  List.iter
    (fun (input, label) ->
      match T.bits_of_string input with
      | _ -> Alcotest.failf "%s accepted" label
      | exception T.Parse_error _ -> ())
    [
      ("mutexlb-bits 1\nalgo x\nn 2\nbits 8 z0\n", "bad hex");
      ("mutexlb-bits 1\nalgo x\nn 2\nbits 8 0\n", "short hex");
      ("mutexlb-bits 1\nalgo x\nn 2\n", "missing bits");
    ]

let test_file_roundtrip () =
  let path = Filename.temp_file "mutexlb" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let exec = (Lb_mutex.Canonical.run ya ~n:2).Lb_mutex.Canonical.exec in
      T.save ~path (T.execution_to_string ~algo:"yang_anderson" ~n:2 exec);
      let _, _, exec' = T.execution_of_string (T.load ~path ()) in
      Alcotest.(check bool) "file roundtrip" true (Execution.equal exec exec'))

let test_resource_caps () =
  (* a hostile artifact cannot balloon memory: the parsers refuse
     oversized inputs with a Parse_error naming the limit *)
  let big_trace =
    "mutexlb-trace 1\nalgo x\nn 2\n"
    ^ String.concat "" (List.init 10 (fun _ -> "step 0 try\n"))
  in
  (match T.execution_of_string ~max_steps:5 big_trace with
  | _ -> Alcotest.fail "oversized trace accepted"
  | exception T.Parse_error { detail; _ } ->
    Alcotest.(check bool) "names the step limit" true
      (Astring_contains.contains detail "5-step limit"));
  (* the default limit still parses it *)
  ignore (T.execution_of_string big_trace);
  (* declared bit count over the cap is rejected before allocation *)
  (match T.bits_of_string ~max_bits:8 "mutexlb-bits 1\nalgo x\nn 2\nbits 16 abcd\n" with
  | _ -> Alcotest.fail "oversized bits accepted"
  | exception T.Parse_error { detail; _ } ->
    Alcotest.(check bool) "names the bit limit" true
      (Astring_contains.contains detail "8-bit limit"));
  (* an absurd declared count must not OOM even without an explicit cap *)
  (match T.bits_of_string "mutexlb-bits 1\nalgo x\nn 2\nbits 999999999999 00\n" with
  | _ -> Alcotest.fail "absurd bit count accepted"
  | exception T.Parse_error _ -> ());
  (* file-size cap: refused at line 0 before reading the content in *)
  let path = Filename.temp_file "mutexlb" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.save ~path "mutexlb-trace 1\nalgo x\nn 2\nstep 0 try\n";
      match T.load ~max_bytes:8 ~path () with
      | _ -> Alcotest.fail "oversized file accepted"
      | exception T.Parse_error { line; detail } ->
        Alcotest.(check int) "file-level error is line 0" 0 line;
        Alcotest.(check bool) "names the byte limit" true
          (Astring_contains.contains detail "8-byte limit"))

let test_save_is_atomic_replace () =
  (* save writes a temp file and renames it into place: overwriting an
     existing artifact leaves the new content, and no temp files stay
     behind in the directory *)
  let dir = Filename.temp_file "mutexlb_dir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "artifact.trace" in
      T.save ~path "first version\n";
      T.save ~path "second version\n";
      Alcotest.(check string) "latest content wins" "second version\n"
        (T.load ~path ());
      Alcotest.(check (list string)) "no temp files left" [ "artifact.trace" ]
        (Array.to_list (Sys.readdir dir)))

let execution_roundtrip_prop =
  QCheck.Test.make ~name:"trace roundtrip on random canonical runs" ~count:30
    QCheck.(pair (int_range 1 6) (int_range 0 1000))
    (fun (n, seed) ->
      let exec = (Lb_mutex.Canonical.run_random ~seed ya ~n).Lb_mutex.Canonical.exec in
      let s = T.execution_to_string ~algo:"ya" ~n exec in
      let _, _, exec' = T.execution_of_string s in
      Execution.equal exec exec')

let suite =
  [
    Alcotest.test_case "execution roundtrip" `Quick test_execution_roundtrip;
    Alcotest.test_case "rmw roundtrip" `Quick test_execution_rmw_roundtrip;
    Alcotest.test_case "execution bad input" `Quick test_execution_bad_input;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "blank lines accepted" `Quick test_blank_lines_accepted;
    Alcotest.test_case "bits padding canonical" `Quick test_bits_padding_canonical;
    Alcotest.test_case "resource caps" `Quick test_resource_caps;
    Alcotest.test_case "save atomic replace" `Quick test_save_is_atomic_replace;
    Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
    Alcotest.test_case "bits odd lengths" `Quick test_bits_odd_lengths;
    Alcotest.test_case "bits bad input" `Quick test_bits_bad_input;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest execution_roundtrip_prop;
  ]

(* ------------------------------- Dot --------------------------------- *)

let test_dot_export () =
  let c = Lb_core.Construct.run ya ~n:3 (P.of_array [| 1; 2; 0 |]) in
  let dot = Lb_core.Dot.of_construction c in
  Alcotest.(check bool) "header" true (Astring_contains.contains dot "digraph metasteps");
  (* one node line per metastep *)
  let nodes =
    List.length
      (List.filter
         (fun l -> Astring_contains.contains l "label=")
         (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "one node per metastep"
    (Lb_core.Metastep.count c.Lb_core.Construct.arena)
    nodes;
  (* covering edges only: strictly fewer than all poset edges, and the
     transitive closure must be preserved -- spot-check that every process
     chain is still connected in sequence *)
  Alcotest.(check bool) "has edges" true (Astring_contains.contains dot "->");
  (* dashed preread edges appear iff prereads exist *)
  let has_pread = ref false in
  Lb_core.Metastep.iter c.Lb_core.Construct.arena (fun m ->
      if m.Lb_core.Metastep.pread <> [] then has_pread := true);
  if !has_pread then
    Alcotest.(check bool) "dashed edges" true
      (Astring_contains.contains dot "style=dashed")

let test_dot_save () =
  let path = Filename.temp_file "mutexlb" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let c = Lb_core.Construct.run ya ~n:2 (P.identity 2) in
      Lb_core.Dot.save ~path c;
      Alcotest.(check bool) "file written" true
        (Astring_contains.contains (T.load ~path ()) "digraph"))

let suite =
  suite
  @ [
      Alcotest.test_case "dot export" `Quick test_dot_export;
      Alcotest.test_case "dot save" `Quick test_dot_save;
    ]
