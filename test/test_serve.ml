(* The job service and the store concurrency layer beneath it: writer
   lease + reader registration (Store_lock), epoch-based GC over a live
   store (Store_gc), the sweep engine's lease/cancel integration, the
   fair scheduler, and the served protocol end-to-end over a real
   socket — including the acceptance bar that a served certificate is
   byte-identical to the batch CLI path. *)

module Store = Lb_store.Store
module Store_key = Lb_store.Store_key
module Lock = Lb_store.Store_lock
module Gc = Lb_store.Store_gc
module Sweep = Lb_store.Sweep
module Pool = Lb_util.Pool
module Json = Lb_util.Json
module Protocol = Lb_serve.Protocol
module Sched = Lb_serve.Scheduler

let ya = Lb_algos.Yang_anderson.algorithm

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d = Filename.temp_file "mutexlb_serve" (Printf.sprintf "_%d" !ctr) in
    Sys.remove d;
    d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Store.open_ ~dir))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file path content =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* a pid guaranteed dead: spawn a short-lived child and reap it.
   create_process uses posix_spawn, so unlike fork it stays legal
   after other suites have spawned domains *)
let dead_pid () =
  let pid =
    Unix.create_process "/bin/true" [| "/bin/true" |] Unix.stdin Unix.stdout
      Unix.stderr
  in
  ignore (Unix.waitpid [] pid);
  pid

let cert_text c = Protocol.certificate_text c

(* the registry probe the CLI passes to gc *)
let live_fp ~algo ~n =
  match Lb_algos.Registry.find algo with
  | Some a when Lb_shmem.Algorithm.supports a n ->
    Some (Store_key.fingerprint a ~n)
  | _ -> None

let stale_fp ~algo:_ ~n:_ = Some "deadbeef"

let populate st ~n =
  let pis = Lb_core.Permutation.all n in
  let cert, report =
    Sweep.certify ~store:st ~jobs:1 ya ~n ~perms:pis ~exhaustive:true ()
  in
  (pis, Option.get cert, report)

(* ---------------------------- writer lease ---------------------------- *)

let test_lock_excludes () =
  with_store (fun st ->
      Alcotest.(check bool) "free at first" true (Lock.writer_held st = None);
      let w =
        match Lock.try_acquire_writer st ~purpose:"first" with
        | Ok w -> w
        | Error _ -> Alcotest.fail "fresh store lease refused"
      in
      (match Lock.try_acquire_writer st ~purpose:"second" with
      | Ok _ -> Alcotest.fail "double acquisition"
      | Error h ->
        Alcotest.(check string) "holder purpose" "first" h.Lock.h_purpose;
        Alcotest.(check int) "holder pid" (Unix.getpid ()) h.Lock.h_pid);
      (match Lock.writer_held st with
      | Some h -> Alcotest.(check string) "held purpose" "first" h.Lock.h_purpose
      | None -> Alcotest.fail "writer_held misses a live lease");
      Lock.release_writer w;
      Lock.release_writer w (* idempotent *);
      Alcotest.(check bool) "free after release" true (Lock.writer_held st = None);
      match Lock.try_acquire_writer st ~purpose:"third" with
      | Ok w -> Lock.release_writer w
      | Error _ -> Alcotest.fail "lease not reacquirable")

let test_lock_with_writer_busy () =
  with_store (fun st ->
      let w =
        Result.get_ok (Lock.try_acquire_writer st ~purpose:"squatter")
      in
      (match Lock.with_writer ~wait:0.05 st ~purpose:"late" (fun () -> ()) with
      | () -> Alcotest.fail "with_writer ran under a held lease"
      | exception Lock.Busy h ->
        Alcotest.(check string) "names the holder" "squatter" h.Lock.h_purpose);
      Lock.release_writer w;
      Alcotest.(check int) "with_writer runs and releases" 41
        (Lock.with_writer st ~purpose:"ok" (fun () -> 41));
      Alcotest.(check bool) "released after" true (Lock.writer_held st = None))

let test_lock_stale_break () =
  with_store (fun st ->
      let pid = dead_pid () in
      write_file
        (Filename.concat (Store.dir st) "locks/writer.lease")
        (Printf.sprintf "pid %d\nhost %s\npurpose crashed\nsince %.3f\ntoken x\n"
           pid (Unix.gethostname ()) (Unix.gettimeofday ()));
      Alcotest.(check bool) "stale lease is not held" true
        (Lock.writer_held st = None);
      match Lock.try_acquire_writer st ~purpose:"breaker" with
      | Ok w -> Lock.release_writer w
      | Error _ -> Alcotest.fail "stale lease never broken")

let test_readers_epoch () =
  with_store (fun st ->
      Alcotest.(check int) "virgin epoch" 0 (Lock.epoch st);
      let r = Lock.register_reader ~purpose:"test" st in
      (match Lock.live_readers st with
      | [ (pid, epoch) ] ->
        Alcotest.(check int) "own pid" (Unix.getpid ()) pid;
        Alcotest.(check int) "joined at 0" 0 epoch
      | l -> Alcotest.failf "expected one reader, got %d" (List.length l));
      Alcotest.(check int) "bump" 1 (Lock.bump_epoch st);
      Lock.refresh_reader r;
      (match Lock.live_readers st with
      | [ (_, epoch) ] -> Alcotest.(check int) "refreshed epoch" 1 epoch
      | _ -> Alcotest.fail "reader lost on refresh");
      Lock.release_reader r;
      Alcotest.(check int) "gone" 0 (List.length (Lock.live_readers st)))

let test_reap_dead_readers () =
  with_store (fun st ->
      let pid = dead_pid () in
      write_file
        (Filename.concat (Store.dir st)
           (Printf.sprintf "locks/readers/%d-0.reader" pid))
        (Printf.sprintf "pid %d\nhost %s\npurpose crashed\nepoch 0\nsince %.3f\n"
           pid (Unix.gethostname ()) (Unix.gettimeofday ()));
      Alcotest.(check int) "dead reader invisible" 0
        (List.length (Lock.live_readers st));
      Alcotest.(check int) "reaped" 1 (Lock.reap_dead_readers st);
      Alcotest.(check int) "nothing to reap twice" 0 (Lock.reap_dead_readers st))

(* --------------------------------- gc --------------------------------- *)

let test_gc_refuses_under_lease () =
  with_store (fun st ->
      let _ = populate st ~n:3 in
      let w = Result.get_ok (Lock.try_acquire_writer st ~purpose:"sweep") in
      (match Gc.run ~current_fp:live_fp st with
      | Error h -> Alcotest.(check string) "names holder" "sweep" h.Lock.h_purpose
      | Ok _ -> Alcotest.fail "gc ran under a held lease");
      (* force overrides; everything is fresh so nothing is condemned *)
      (match Gc.run ~force:true ~current_fp:live_fp st with
      | Error _ -> Alcotest.fail "--force did not override"
      | Ok r ->
        Alcotest.(check int) "kept all" 6 r.Gc.g_kept;
        Alcotest.(check int) "condemned none" 0 (List.length r.Gc.g_condemned));
      Lock.release_writer w)

let test_gc_dry_run_moves_nothing () =
  with_store (fun st ->
      let _ = populate st ~n:3 in
      (match Gc.run ~dry:true ~current_fp:stale_fp st with
      | Error _ -> Alcotest.fail "dry run should never refuse"
      | Ok r ->
        Alcotest.(check bool) "dry" true r.Gc.g_dry;
        Alcotest.(check int) "all would go" 6 (List.length r.Gc.g_condemned);
        Alcotest.(check int) "epoch untouched" 0 r.Gc.g_epoch);
      Alcotest.(check int) "entries survive a dry run" 6
        (Store.stat st).Store.s_entries)

let test_gc_epochs_defer_to_readers () =
  with_store (fun st ->
      let _ = populate st ~n:3 in
      let rd = Lock.register_reader ~purpose:"holdout" st in
      (* destructive stale pass: condemn everything, but the reader
         joined at epoch 0 so the trash must survive *)
      (match Gc.run ~current_fp:stale_fp st with
      | Error _ -> Alcotest.fail "gc refused with no writer"
      | Ok r ->
        Alcotest.(check int) "condemned all" 6 (List.length r.Gc.g_condemned);
        Alcotest.(check int) "epoch bumped" 1 r.Gc.g_epoch;
        Alcotest.(check int) "nothing purged yet" 0 r.Gc.g_trash_purged;
        Alcotest.(check int) "trash deferred" 1 r.Gc.g_trash_deferred);
      Alcotest.(check int) "objects gone" 0 (Store.stat st).Store.s_entries;
      (* a second pass with the reader still at epoch 0 keeps deferring *)
      (match Gc.run ~current_fp:live_fp st with
      | Ok r ->
        Alcotest.(check int) "still deferred" 1 r.Gc.g_trash_deferred;
        Alcotest.(check int) "still nothing purged" 0 r.Gc.g_trash_purged;
        Alcotest.(check int) "no bump without condemnation" 1 r.Gc.g_epoch
      | Error _ -> Alcotest.fail "gc refused");
      (* once the reader re-joins at the current epoch, trash purges *)
      Lock.refresh_reader rd;
      (match Gc.run ~current_fp:live_fp st with
      | Ok r ->
        Alcotest.(check int) "purged" 1 r.Gc.g_trash_purged;
        Alcotest.(check int) "no deferrals left" 0 r.Gc.g_trash_deferred
      | Error _ -> Alcotest.fail "gc refused");
      Lock.release_reader rd)

(* --------------------------- sweep + lease ----------------------------- *)

let test_sweep_busy () =
  with_store (fun st ->
      let pis = Lb_core.Permutation.all 3 in
      let w = Result.get_ok (Lock.try_acquire_writer st ~purpose:"other") in
      (match
         Sweep.certify ~store:st ~jobs:1 ~lease_wait:0.05 ya ~n:3 ~perms:pis
           ~exhaustive:true ()
       with
      | _ -> Alcotest.fail "sweep ran under someone else's lease"
      | exception Lock.Busy h ->
        Alcotest.(check string) "names holder" "other" h.Lock.h_purpose);
      (* a caller already holding the lease can pass it in — and keeps it *)
      let cert, _ =
        Sweep.certify ~store:st ~jobs:1 ~lease:w ya ~n:3 ~perms:pis
          ~exhaustive:true ()
      in
      Alcotest.(check bool) "sweep ran under the passed lease" true
        (cert <> None);
      Alcotest.(check bool) "ownership retained" true
        (Lock.writer_held st <> None);
      Lock.release_writer w)

let test_sweep_cancel_checkpoints_and_resumes () =
  let n = 4 in
  let pis, exhaustive = Protocol.family ~n ~perms:24 ~seed:0 in
  with_store (fun ref_st ->
      let ref_cert, ref_report =
        Sweep.certify ~store:ref_st ~jobs:1 ya ~n ~perms:pis ~exhaustive ()
      in
      let ref_text = cert_text (Option.get ref_cert) in
      let ref_manifest = read_file ref_report.Sweep.manifest_path in
      with_store (fun st ->
          let cancel = Pool.Cancel.create () in
          let items = Atomic.make 0 in
          let on_event = function
            | Sweep.Item _ ->
              if Atomic.fetch_and_add items 1 = 1 then Pool.Cancel.set cancel
            | _ -> ()
          in
          (match
             Sweep.certify ~store:st ~jobs:1 ~cancel ~on_event ya ~n ~perms:pis
               ~exhaustive ()
           with
          | _ -> Alcotest.fail "cancel did not interrupt the sweep"
          | exception Pool.Cancelled -> ());
          Alcotest.(check bool) "lease released on the way out" true
            (Lock.writer_held st = None);
          Alcotest.(check bool) "manifest checkpointed" true
            (Store.manifest_paths st <> []);
          (* resume completes from the checkpoint, byte-identically *)
          let cert2, report2 =
            Sweep.certify ~store:st ~jobs:1 ya ~n ~perms:pis ~exhaustive ()
          in
          Alcotest.(check bool) "resume reused durable units" true
            (report2.Sweep.progress.Sweep.p_hits >= 2);
          Alcotest.(check string) "certificate byte-identical" ref_text
            (cert_text (Option.get cert2));
          Alcotest.(check string) "manifest byte-identical" ref_manifest
            (read_file report2.Sweep.manifest_path)))

(* ------------------------------ scheduler ------------------------------ *)

let sched_cfg ?(max_active = 1) ?(per_client = 1) ?(rate = 1000.0)
    ?(burst = 1000.0) () =
  { Sched.max_active; per_client; rate; burst }

let test_sched_round_robin () =
  let t = Sched.create ~config:(sched_cfg ()) () in
  let tickets =
    List.map
      (fun client -> (client, Result.get_ok (Sched.submit t ~client)))
      [ "a"; "a"; "a"; "a"; "b"; "b"; "b"; "b" ]
  in
  let grants = Atomic.make [] in
  let doms =
    List.map
      (fun (client, tk) ->
        Domain.spawn (fun () ->
            match Sched.await t tk with
            | `Granted seq ->
              let rec push () =
                let old = Atomic.get grants in
                if not (Atomic.compare_and_set grants old ((client, seq) :: old))
                then push ()
              in
              push ();
              Sched.finish t tk
            | `Draining -> ()))
      tickets
  in
  List.iter Domain.join doms;
  let order =
    List.sort (fun (_, s1) (_, s2) -> compare s1 s2) (Atomic.get grants)
    |> List.map fst
  in
  (* a1 granted on submit (b not yet known); thereafter strict
     alternation while both clients have work, then b drains its tail *)
  Alcotest.(check (list string)) "round-robin grant order"
    [ "a"; "a"; "b"; "a"; "b"; "a"; "b"; "b" ]
    order;
  let seqs = List.sort compare (List.map snd (Atomic.get grants)) in
  Alcotest.(check (list int)) "dense grant sequence" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    seqs

let test_sched_rate_limit () =
  let t = Sched.create ~config:(sched_cfg ~rate:0.001 ~burst:2.0 ()) () in
  let t1 = Result.get_ok (Sched.submit t ~client:"chatty") in
  let t2 = Result.get_ok (Sched.submit t ~client:"chatty") in
  (match Sched.submit t ~client:"chatty" with
  | Ok _ -> Alcotest.fail "empty bucket admitted a job"
  | Error (`Rate_limited ra) ->
    Alcotest.(check bool) "retry hint positive" true (ra > 0.0)
  | Error `Draining -> Alcotest.fail "not draining");
  (* an unrelated client has its own bucket *)
  let t3 = Result.get_ok (Sched.submit t ~client:"quiet") in
  List.iter (Sched.finish t) [ t1; t2; t3 ]

let test_sched_drain () =
  let t = Sched.create ~config:(sched_cfg ()) () in
  let t1 = Result.get_ok (Sched.submit t ~client:"a") in
  let t2 = Result.get_ok (Sched.submit t ~client:"a") in
  Alcotest.(check int) "one queued" 1 (Sched.queued t);
  Sched.drain t;
  (match Sched.await t t2 with
  | `Draining -> ()
  | `Granted _ -> Alcotest.fail "queued ticket survived the drain");
  (match Sched.submit t ~client:"a" with
  | Error `Draining -> ()
  | _ -> Alcotest.fail "drained scheduler admitted a job");
  (* the already-granted ticket is unaffected *)
  (match Sched.await t t1 with
  | `Granted _ -> ()
  | `Draining -> Alcotest.fail "running ticket was drained");
  Sched.finish t t1;
  Sched.finish t t2

let test_sched_per_client_cap () =
  let t = Sched.create ~config:(sched_cfg ~max_active:2 ()) () in
  let t1 = Result.get_ok (Sched.submit t ~client:"a") in
  let t2 = Result.get_ok (Sched.submit t ~client:"a") in
  Alcotest.(check int) "cap holds with a free slot" 1 (Sched.running t);
  let t3 = Result.get_ok (Sched.submit t ~client:"b") in
  Alcotest.(check int) "other client fills it" 2 (Sched.running t);
  Sched.finish t t1;
  (match Sched.await t t2 with
  | `Granted _ -> ()
  | `Draining -> Alcotest.fail "freed slot not regranted");
  List.iter (Sched.finish t) [ t2; t3 ]

(* --------------------------- live server -------------------------------- *)

let certify_job ?(perms = 720) ?(seed = 0) ?(algo = "yang_anderson") ~n () =
  Json.Obj
    [
      ("kind", Json.String "certify");
      ("algo", Json.String algo);
      ("n", Json.Int n);
      ("perms", Json.Int perms);
      ("seed", Json.Int seed);
    ]

let start_server ?(max_active = 1) ?(grace = 0.5) ?jobs ~store_dir () =
  let port_file = Filename.temp_file "mutexlb_serve" ".port" in
  Sys.remove port_file;
  let cfg =
    {
      (Lb_serve.Server.default ~store_dir) with
      Lb_serve.Server.port = 0;
      port_file = Some port_file;
      jobs;
      sched = sched_cfg ~max_active ();
      grace;
    }
  in
  let d = Domain.spawn (fun () -> Lb_serve.Server.run cfg) in
  let rec wait_port tries =
    if tries = 0 then Alcotest.fail "server never wrote its port file"
    else if Sys.file_exists port_file then begin
      let line = String.trim (read_file port_file) in
      match int_of_string_opt line with
      | Some p -> p
      | None -> Alcotest.fail "unparsable port file"
    end
    else begin
      Unix.sleepf 0.05;
      wait_port (tries - 1)
    end
  in
  let port = wait_port 200 in
  Fun.protect ~finally:(fun () -> Sys.remove port_file) (fun () -> (d, port))

let stop_server d =
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Domain.join d

let json_str j name = Option.bind (Json.member name j) Json.as_string
let json_int j name = Option.bind (Json.member name j) Json.as_int

let submit_ok ?(client = "cli") ~port job ~on_event =
  match Lb_serve.Client.submit ~port ~client job ~on_event with
  | Error msg -> Alcotest.failf "transport failure: %s" msg
  | Ok o -> o

let test_server_end_to_end () =
  let store_dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf store_dir) @@ fun () ->
  let d, port = start_server ~jobs:2 ~store_dir () in
  Fun.protect ~finally:(fun () -> ignore port) @@ fun () ->
  (* health answers before any job ran *)
  (match Lb_serve.Client.health ~port () with
  | Ok j ->
    Alcotest.(check bool) "healthy" true
      (Json.member "ok" j = Some (Json.Bool true))
  | Error msg -> Alcotest.failf "health: %s" msg);
  (* malformed requests are clean 400s, not hangs or 500s *)
  let http ?body meth path =
    match Lb_serve.Http.request ~port ~meth ~path ?body () with
    | Ok (status, _, _) -> status
    | Error msg -> Alcotest.failf "%s %s: %s" meth path msg
  in
  Alcotest.(check int) "404 on unknown path" 404 (http "GET" "/nope");
  Alcotest.(check int) "405 on wrong method" 405 (http "GET" "/v1/jobs");
  Alcotest.(check int) "400 on garbage body" 400
    (http "POST" "/v1/jobs" ~body:"not json");
  Alcotest.(check int) "400 on unknown kind" 400
    (http "POST" "/v1/jobs" ~body:{|{"kind":"bogus"}|});
  Alcotest.(check int) "400 on missing algo" 400
    (http "POST" "/v1/jobs" ~body:{|{"kind":"certify","n":3}|});
  (* cold certify: full sweep, streamed events, then a result whose
     certificate is byte-identical to the batch path *)
  let n = 4 in
  let job = certify_job ~n ~perms:24 () in
  let saw_granted = ref false in
  let o =
    submit_ok ~client:"alice" ~port job ~on_event:(fun j ->
        if json_str j "event" = Some "granted" then saw_granted := true)
  in
  Alcotest.(check bool) "job granted a slot" true !saw_granted;
  let result = Option.get o.Lb_serve.Client.o_result in
  Alcotest.(check (option string)) "cold path" (Some "swept")
    (json_str result "path");
  let served_text =
    Option.get
      (Option.bind (Json.member "certificate" result) (fun c ->
           json_str c "text"))
  in
  let expected_text =
    with_store (fun ref_st ->
        let pis, exhaustive = Protocol.family ~n ~perms:24 ~seed:0 in
        let cert, _ =
          Sweep.certify ~store:ref_st ~jobs:1 ya ~n ~perms:pis ~exhaustive ()
        in
        cert_text (Option.get cert))
  in
  Alcotest.(check string) "served certificate == batch certificate"
    expected_text served_text;
  (* resubmission is a warm hit: no slot, same bytes *)
  let o2 = submit_ok ~client:"bob" ~port job ~on_event:(fun _ -> ()) in
  let result2 = Option.get o2.Lb_serve.Client.o_result in
  Alcotest.(check (option string)) "warm path" (Some "warm")
    (json_str result2 "path");
  Alcotest.(check (option string)) "warm bytes identical" (Some served_text)
    (Option.bind (Json.member "certificate" result2) (fun c ->
         json_str c "text"));
  (* stats sees both clients *)
  (match Lb_serve.Client.stats ~port () with
  | Ok j ->
    Alcotest.(check bool) "jobs done counted" true
      (match json_int j "jobs_done" with Some k -> k >= 2 | None -> false)
  | Error msg -> Alcotest.failf "stats: %s" msg);
  stop_server d

let test_server_fairness () =
  let store_dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf store_dir) @@ fun () ->
  let d, port = start_server ~jobs:1 ~store_dir () in
  let slots = Atomic.make [] in
  let record label j =
    match (json_str j "event", json_int j "slot") with
    | Some "granted", Some slot ->
      let rec push () =
        let old = Atomic.get slots in
        if not (Atomic.compare_and_set slots old ((label, slot) :: old)) then
          push ()
      in
      push ()
    | _ -> ()
  in
  let submit_in_domain ~client label job accepted =
    Domain.spawn (fun () ->
        let o =
          submit_ok ~client ~port job ~on_event:(fun j ->
              if json_str j "event" = Some "accepted" then
                Atomic.set accepted true;
              record label j)
        in
        if o.Lb_serve.Client.o_result = None then
          Alcotest.failf "%s: no result" label)
  in
  let wait flag what =
    let rec go tries =
      if tries = 0 then Alcotest.failf "timed out waiting for %s" what
      else if not (Atomic.get flag) then begin
        Unix.sleepf 0.02;
        go (tries - 1)
      end
    in
    go 500
  in
  (* alice's slow job occupies the only slot... *)
  let slow_granted = Atomic.make false in
  let slow_accepted = Atomic.make false in
  let d_slow =
    Domain.spawn (fun () ->
        let o =
          submit_ok ~client:"alice" ~port
            (certify_job ~n:8 ~perms:400 ~seed:5 ())
            ~on_event:(fun j ->
              if json_str j "event" = Some "granted" then
                Atomic.set slow_granted true;
              if json_str j "event" = Some "accepted" then
                Atomic.set slow_accepted true;
              record "slow" j)
        in
        if o.Lb_serve.Client.o_result = None then
          Alcotest.fail "slow job lost its result")
  in
  wait slow_granted "the slow job's grant";
  (* ...then alice queues two more, and bob arrives last *)
  let acc1 = Atomic.make false and acc2 = Atomic.make false in
  let acc_b = Atomic.make false in
  let d_q1 =
    submit_in_domain ~client:"alice" "alice_q1"
      (certify_job ~n:4 ~perms:6 ~seed:11 ())
      acc1
  in
  wait acc1 "alice_q1 admission";
  let d_q2 =
    submit_in_domain ~client:"alice" "alice_q2"
      (certify_job ~n:4 ~perms:6 ~seed:12 ())
      acc2
  in
  wait acc2 "alice_q2 admission";
  let d_b =
    submit_in_domain ~client:"bob" "bob_q"
      (certify_job ~n:4 ~perms:6 ~seed:13 ())
      acc_b
  in
  wait acc_b "bob admission";
  List.iter Domain.join [ d_slow; d_q1; d_q2; d_b ];
  let slot label =
    match List.assoc_opt label (Atomic.get slots) with
    | Some s -> s
    | None -> Alcotest.failf "%s was never granted" label
  in
  (* round-robin: bob's late ticket overtakes alice's second queued one
     (FIFO would have made him wait behind both) — but not her first *)
  Alcotest.(check bool) "bob before alice_q2" true
    (slot "bob_q" < slot "alice_q2");
  Alcotest.(check bool) "alice_q1 before bob" true
    (slot "alice_q1" < slot "bob_q");
  stop_server d

let test_server_drain_and_resume () =
  let store_dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf store_dir) @@ fun () ->
  let d, port = start_server ~jobs:1 ~grace:0.5 ~store_dir () in
  let job = certify_job ~n:8 ~perms:2000 ~seed:9 () in
  let items = Atomic.make 0 in
  let drained_resumable = Atomic.make false in
  let outcome = ref None in
  let d_sub =
    Domain.spawn (fun () ->
        let o =
          submit_ok ~client:"carol" ~port job ~on_event:(fun j ->
              if json_str j "event" = Some "item" then Atomic.incr items;
              if
                json_str j "event" = Some "drained"
                && Json.member "resumable" j = Some (Json.Bool true)
              then Atomic.set drained_resumable true)
        in
        outcome := Some o)
  in
  (* let at least one unit land durably, then pull the plug *)
  let rec wait_items tries =
    if tries = 0 then Alcotest.fail "sweep produced no items"
    else if Atomic.get items < 1 then begin
      Unix.sleepf 0.02;
      wait_items (tries - 1)
    end
  in
  wait_items 500;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Domain.join d_sub;
  Domain.join d;
  let o = Option.get !outcome in
  Alcotest.(check bool) "drained, not errored" true
    o.Lb_serve.Client.o_drained;
  Alcotest.(check bool) "drain event flagged resumable" true
    (Atomic.get drained_resumable);
  (* the store the drained server left behind is resumable: a restarted
     server serves the same job to completion, reusing the entries *)
  let st = Store.open_ ~dir:store_dir in
  Alcotest.(check bool) "manifest checkpointed" true
    (Store.manifest_paths st <> []);
  Alcotest.(check bool) "entries durable" true
    ((Store.stat st).Store.s_entries >= 1);
  (* a submit straight after the drain began would have been 503'd;
     restart and finish the job *)
  let d2, port2 = start_server ~jobs:1 ~store_dir () in
  let o2 = submit_ok ~client:"carol" ~port:port2 job ~on_event:(fun _ -> ()) in
  let result = Option.get o2.Lb_serve.Client.o_result in
  Alcotest.(check bool) "resume reused durable entries" true
    (match json_int result "hits" with Some h -> h >= 1 | None -> false);
  Alcotest.(check bool) "job completed after restart" true
    (Json.member "ok" result = Some (Json.Bool true));
  stop_server d2

(* Satellite: non-certify jobs (check/lint/chaos/mutate) have no durable
   checkpoint, but a drain must still cancel them cooperatively — the
   client gets a `drained` event flagged resumable:false (so scripted
   clients exit 75 and re-submit from scratch) instead of hanging until
   the job finishes or dying with a torn connection. *)
let test_server_drain_cancels_nonresumable () =
  let store_dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf store_dir) @@ fun () ->
  let d, port = start_server ~jobs:1 ~grace:0.5 ~store_dir () in
  (* a chaos matrix is long enough to still be running when the drain
     lands, and checks its cancel token between cells *)
  let job =
    Json.Obj
      [
        ("kind", Json.String "chaos");
        ("max_states", Json.Int 60_000);
        ("random", Json.Int 2);
        ("seed", Json.Int 3);
      ]
  in
  let granted = Atomic.make false in
  let drained_flag = Atomic.make None in
  let outcome = ref None in
  let d_sub =
    Domain.spawn (fun () ->
        let o =
          submit_ok ~client:"dave" ~port job ~on_event:(fun j ->
              if json_str j "event" = Some "granted" then
                Atomic.set granted true;
              if json_str j "event" = Some "drained" then
                Atomic.set drained_flag (Json.member "resumable" j))
        in
        outcome := Some o)
  in
  let rec wait_granted tries =
    if tries = 0 then Alcotest.fail "job never granted"
    else if not (Atomic.get granted) then begin
      Unix.sleepf 0.02;
      wait_granted (tries - 1)
    end
  in
  wait_granted 500;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Domain.join d_sub;
  Domain.join d;
  let o = Option.get !outcome in
  if o.Lb_serve.Client.o_drained then
    Alcotest.(check bool) "drain event flagged non-resumable" true
      (Atomic.get drained_flag = Some (Json.Bool false))
  else
    (* the matrix can finish before the drain lands on a fast machine;
       a clean result is then the correct outcome *)
    Alcotest.(check bool) "finished cleanly instead" true
      (o.Lb_serve.Client.o_result <> None)

(* --------------------------- torture test ------------------------------ *)

let test_concurrent_store_torture () =
  let n = 5 in
  let pis, exhaustive = Protocol.family ~n ~perms:60 ~seed:7 in
  with_store (fun st ->
      let fp = Store_key.fingerprint ya ~n in
      let name = ya.Lb_shmem.Algorithm.name in
      let keys =
        List.map
          (fun pi ->
            Store_key.derive ~fp ~algo:name ~n ~pi ~model:Store_key.sc_model)
          pis
      in
      let stop = Atomic.make false in
      let damaged = Atomic.make 0 in
      let reads = Atomic.make 0 in
      let readers =
        List.init 3 (fun _ ->
            Domain.spawn (fun () ->
                let r = Lock.register_reader ~purpose:"torture" st in
                Fun.protect
                  ~finally:(fun () -> Lock.release_reader r)
                  (fun () ->
                    while not (Atomic.get stop) do
                      List.iter
                        (fun key ->
                          (match Store.lookup st ~key with
                          | `Damaged _ -> Atomic.incr damaged
                          | `Hit _ | `Absent -> ());
                          Atomic.incr reads)
                        keys;
                      Unix.sleepf 0.002
                    done)))
      in
      let writer =
        Domain.spawn (fun () ->
            Sweep.certify ~store:st ~jobs:2 ya ~n ~perms:pis ~exhaustive ())
      in
      (* while the sweep holds the lease, a destructive gc must refuse *)
      let rec wait_lease tries =
        if tries > 0 && Lock.writer_held st = None then begin
          Unix.sleepf 0.002;
          wait_lease (tries - 1)
        end
      in
      wait_lease 1000;
      (match Gc.run ~current_fp:live_fp st with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "gc ran under a live sweep");
      let cert, report = Domain.join writer in
      Atomic.set stop true;
      List.iter Domain.join readers;
      Alcotest.(check int) "zero damaged reads" 0 (Atomic.get damaged);
      Alcotest.(check bool) "readers actually read" true
        (Atomic.get reads > 0);
      Alcotest.(check int) "no reader files left" 0
        (List.length (Lock.live_readers st));
      (* the concurrent sweep's output is byte-identical to a
         sequential one in a fresh store *)
      with_store (fun st2 ->
          let cert2, report2 =
            Sweep.certify ~store:st2 ~jobs:1 ya ~n ~perms:pis ~exhaustive ()
          in
          Alcotest.(check string) "certificate byte-identical"
            (cert_text (Option.get cert2))
            (cert_text (Option.get cert));
          Alcotest.(check string) "manifest byte-identical"
            (read_file report2.Sweep.manifest_path)
            (read_file report.Sweep.manifest_path)))

let suite =
  [
    Alcotest.test_case "lock: lease excludes writers" `Quick test_lock_excludes;
    Alcotest.test_case "lock: with_writer raises Busy" `Quick
      test_lock_with_writer_busy;
    Alcotest.test_case "lock: stale lease broken" `Quick test_lock_stale_break;
    Alcotest.test_case "lock: readers + epoch" `Quick test_readers_epoch;
    Alcotest.test_case "lock: reap dead readers" `Quick test_reap_dead_readers;
    Alcotest.test_case "gc: refuses under lease, --force overrides" `Quick
      test_gc_refuses_under_lease;
    Alcotest.test_case "gc: dry run moves nothing" `Quick
      test_gc_dry_run_moves_nothing;
    Alcotest.test_case "gc: trash defers to live readers" `Quick
      test_gc_epochs_defer_to_readers;
    Alcotest.test_case "sweep: Busy when lease held" `Quick test_sweep_busy;
    Alcotest.test_case "sweep: cancel checkpoints, resume byte-identical"
      `Slow test_sweep_cancel_checkpoints_and_resumes;
    Alcotest.test_case "sched: round-robin across clients" `Quick
      test_sched_round_robin;
    Alcotest.test_case "sched: rate limit sheds at the door" `Quick
      test_sched_rate_limit;
    Alcotest.test_case "sched: drain rejects the queue" `Quick test_sched_drain;
    Alcotest.test_case "sched: per-client cap" `Quick test_sched_per_client_cap;
    Alcotest.test_case "server: end to end over a socket" `Slow
      test_server_end_to_end;
    Alcotest.test_case "server: round-robin fairness under contention" `Slow
      test_server_fairness;
    Alcotest.test_case "server: drain checkpoints, restart resumes" `Slow
      test_server_drain_and_resume;
    Alcotest.test_case "server: drain cancels non-resumable jobs" `Slow
      test_server_drain_cancels_nonresumable;
    Alcotest.test_case "store: reader/writer torture" `Slow
      test_concurrent_store_torture;
  ]
