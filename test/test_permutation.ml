module P = Lb_core.Permutation

let test_of_array_validation () =
  ignore (P.of_array [| 2; 0; 1 |]);
  Alcotest.check_raises "duplicate" (Invalid_argument "Permutation.of_array: duplicate")
    (fun () -> ignore (P.of_array [| 0; 0 |]));
  Alcotest.check_raises "range" (Invalid_argument "Permutation.of_array: out of range")
    (fun () -> ignore (P.of_array [| 0; 3 |]))

let test_identity_reverse () =
  Alcotest.(check (array int)) "identity" [| 0; 1; 2 |] (P.to_array (P.identity 3));
  Alcotest.(check (array int)) "reverse" [| 2; 1; 0 |] (P.to_array (P.reverse 3));
  Alcotest.(check int) "n" 3 (P.n (P.identity 3))

let test_stage_process () =
  let pi = P.of_array [| 3; 1; 0; 2 |] in
  Alcotest.(check int) "process at 0" 3 (P.process_at pi 0);
  Alcotest.(check int) "stage of 3" 0 (P.stage_of pi 3);
  Alcotest.(check int) "stage of 2" 3 (P.stage_of pi 2);
  Alcotest.(check bool) "3 <=pi 1" true (P.lower_or_equal pi 3 1);
  Alcotest.(check bool) "2 <=pi 1 false" false (P.lower_or_equal pi 2 1);
  Alcotest.(check bool) "reflexive" true (P.lower_or_equal pi 0 0);
  Alcotest.(check int) "min_by" 1 (P.min_by pi [ 2; 1; 0 ])

let test_inverse_compose () =
  let pi = P.of_array [| 2; 0; 3; 1 |] in
  let inv = P.inverse pi in
  Alcotest.(check (array int)) "pi . pi^-1 = id" [| 0; 1; 2; 3 |]
    (P.to_array (P.compose pi inv));
  Alcotest.(check (array int)) "pi^-1 . pi = id" [| 0; 1; 2; 3 |]
    (P.to_array (P.compose inv pi))

let test_rank_unrank_small () =
  Alcotest.(check int) "identity rank 0" 0 (P.rank (P.identity 4));
  Alcotest.(check int) "reverse rank n!-1" 23 (P.rank (P.reverse 4));
  for r = 0 to 23 do
    Alcotest.(check int) "roundtrip" r (P.rank (P.unrank ~n:4 r))
  done

let test_all () =
  let perms = P.all 4 in
  Alcotest.(check int) "count" 24 (List.length perms);
  let uniq = List.sort_uniq compare (List.map P.to_array perms) in
  Alcotest.(check int) "distinct" 24 (List.length uniq)

let test_all_guard () =
  Alcotest.check_raises "n too large" (Invalid_argument "Permutation.all: n > 8")
    (fun () -> ignore (P.all 9))

let test_sample_small_space () =
  let rng = Lb_util.Rng.create 1 in
  (* 3! = 6 <= 4*10, so sampling 10 from S_3 must give 6 distinct perms *)
  let perms = P.sample rng ~n:3 ~count:10 in
  Alcotest.(check int) "capped at 6" 6 (List.length perms);
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq compare (List.map P.to_array perms)))

let test_sample_large_space () =
  let rng = Lb_util.Rng.create 2 in
  let perms = P.sample rng ~n:30 ~count:5 in
  Alcotest.(check int) "count" 5 (List.length perms)

let test_pp () =
  Alcotest.(check string) "to_string" "(1 0 2)" (P.to_string (P.of_array [| 1; 0; 2 |]))

let qcheck_perm n rng_seed =
  P.random (Lb_util.Rng.create rng_seed) n

let rank_bijective =
  QCheck.Test.make ~name:"rank/unrank bijective" ~count:200
    QCheck.(pair (int_range 1 8) small_int)
    (fun (n, seed) ->
      let pi = qcheck_perm n seed in
      P.equal pi (P.unrank ~n (P.rank pi)))

let inverse_involutive =
  QCheck.Test.make ~name:"inverse involutive" ~count:200
    QCheck.(pair (int_range 1 10) small_int)
    (fun (n, seed) ->
      let pi = qcheck_perm n seed in
      P.equal pi (P.inverse (P.inverse pi)))

let stage_process_inverse =
  QCheck.Test.make ~name:"stage_of inverts process_at" ~count:200
    QCheck.(pair (int_range 1 10) small_int)
    (fun (n, seed) ->
      let pi = qcheck_perm n seed in
      List.for_all (fun k -> P.stage_of pi (P.process_at pi k) = k) (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "of_array validation" `Quick test_of_array_validation;
    Alcotest.test_case "identity/reverse" `Quick test_identity_reverse;
    Alcotest.test_case "stage/process" `Quick test_stage_process;
    Alcotest.test_case "inverse/compose" `Quick test_inverse_compose;
    Alcotest.test_case "rank/unrank small" `Quick test_rank_unrank_small;
    Alcotest.test_case "all" `Quick test_all;
    Alcotest.test_case "all guard" `Quick test_all_guard;
    Alcotest.test_case "sample small space" `Quick test_sample_small_space;
    Alcotest.test_case "sample large space" `Quick test_sample_large_space;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest rank_bijective;
    QCheck_alcotest.to_alcotest inverse_involutive;
    QCheck_alcotest.to_alcotest stage_process_inverse;
  ]
