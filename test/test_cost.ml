open Lb_shmem

let step = Step.step

(* A two-process hand-built scenario on the toy-like automata is awkward;
   instead we use real algorithms whose canonical executions we can reason
   about exactly. *)

let ya = Lb_algos.Yang_anderson.algorithm
let bakery = Lb_algos.Bakery.algorithm
let ticket = Lb_algos.Rmw_locks.ticket

let greedy algo n = (Lb_mutex.Canonical.run algo ~n).Lb_mutex.Canonical.exec

(* ------------------------------ SC model ----------------------------- *)

let test_sc_counts_all_solo_accesses () =
  (* a solo (n=1) execution has no busy-waiting, so SC = #shared accesses *)
  let exec = greedy ya 1 in
  let b = Lb_cost.Accounting.breakdown ya ~n:1 exec in
  Alcotest.(check int) "sc = accesses" b.Lb_cost.Accounting.shared_accesses
    b.Lb_cost.Accounting.sc

let test_sc_discounts_spins () =
  (* under round-robin, YA processes spin; SC must not charge the
     state-preserving reads *)
  let n = 4 in
  let exec = (Lb_mutex.Canonical.run_round_robin ya ~n).Lb_mutex.Canonical.exec in
  let b = Lb_cost.Accounting.breakdown ya ~n exec in
  Alcotest.(check bool) "spins exist" true
    (b.Lb_cost.Accounting.shared_accesses > b.Lb_cost.Accounting.sc);
  (* and the charged steps are exactly the state-changing shared accesses *)
  let charged = Lb_cost.State_change.charged_steps ya ~n exec in
  let recomputed = Array.fold_left (fun a c -> if c then a + 1 else a) 0 charged in
  Alcotest.(check int) "charged_steps sums to cost" b.Lb_cost.Accounting.sc recomputed

let test_sc_per_process_sums () =
  let n = 5 in
  let exec = greedy bakery n in
  let per = Lb_cost.State_change.per_process bakery ~n exec in
  Alcotest.(check int) "sum = total"
    (Lb_cost.State_change.cost bakery ~n exec)
    (Array.fold_left ( + ) 0 per);
  Array.iteri
    (fun i c -> if c <= 0 then Alcotest.failf "p%d charged nothing" i)
    per

let test_sc_writes_always_charged () =
  let n = 3 in
  let exec = greedy ya n in
  let charged = Lb_cost.State_change.charged_steps ya ~n exec in
  List.iteri
    (fun i (s : Step.t) ->
      match s.Step.action with
      | Step.Write _ ->
        if not charged.(i) then Alcotest.failf "write at %d uncharged" i
      | Step.Read _ | Step.Rmw _ | Step.Crit _ -> ())
    (Execution.steps exec)

let test_sc_crit_free () =
  let n = 2 in
  let exec = greedy ya n in
  let charged = Lb_cost.State_change.charged_steps ya ~n exec in
  List.iteri
    (fun i (s : Step.t) ->
      match s.Step.action with
      | Step.Crit _ -> if charged.(i) then Alcotest.failf "crit at %d charged" i
      | Step.Read _ | Step.Write _ | Step.Rmw _ -> ())
    (Execution.steps exec)

(* ------------------------------ CC model ----------------------------- *)

let test_cc_read_caching () =
  (* ticket lock: the spin on [serving] misses once, then hits until the
     holder bumps it *)
  let n = 3 in
  let exec = (Lb_mutex.Canonical.run_round_robin ticket ~n).Lb_mutex.Canonical.exec in
  let stats = Lb_cost.Cache_coherent.stats ticket ~n exec in
  Alcotest.(check bool) "some hits" true (stats.Lb_cost.Cache_coherent.read_hits > 0);
  Alcotest.(check bool) "some invalidations" true
    (stats.Lb_cost.Cache_coherent.invalidations > 0)

let test_cc_cost_decomposition () =
  let n = 3 in
  let exec = (Lb_mutex.Canonical.run_round_robin ya ~n).Lb_mutex.Canonical.exec in
  let stats = Lb_cost.Cache_coherent.stats ya ~n exec in
  let cost = Lb_cost.Cache_coherent.cost ya ~n exec in
  Alcotest.(check int) "cost = misses + writes" cost
    (stats.Lb_cost.Cache_coherent.read_misses + stats.Lb_cost.Cache_coherent.writes)

let test_cc_solo_sequence () =
  (* one process alone: first read of each register misses, repeats hit *)
  let exec = greedy ya 1 in
  let stats = Lb_cost.Cache_coherent.stats ya ~n:1 exec in
  Alcotest.(check int) "no invalidations solo" 0 stats.Lb_cost.Cache_coherent.invalidations

let test_cc_leq_raw () =
  List.iter
    (fun n ->
      let exec = (Lb_mutex.Canonical.run_round_robin ya ~n).Lb_mutex.Canonical.exec in
      let b = Lb_cost.Accounting.breakdown ya ~n exec in
      Alcotest.(check bool) "cc <= raw accesses" true
        (b.Lb_cost.Accounting.cc <= b.Lb_cost.Accounting.shared_accesses))
    [ 1; 2; 4 ]

(* ------------------------------ DSM model ---------------------------- *)

let test_dsm_local_spins_free () =
  (* Yang-Anderson's P registers are homed: a process's own-spin reads are
     free, so DSM < raw under contention *)
  let n = 4 in
  let exec = (Lb_mutex.Canonical.run_round_robin ya ~n).Lb_mutex.Canonical.exec in
  let b = Lb_cost.Accounting.breakdown ya ~n exec in
  Alcotest.(check bool) "dsm < raw" true
    (b.Lb_cost.Accounting.dsm < b.Lb_cost.Accounting.shared_accesses)

let test_dsm_unhomed_always_remote () =
  (* peterson2's registers have no homes: every access is remote *)
  let p2 = Lb_algos.Peterson2.algorithm in
  let exec = greedy p2 2 in
  let b = Lb_cost.Accounting.breakdown p2 ~n:2 exec in
  Alcotest.(check int) "dsm = raw" b.Lb_cost.Accounting.shared_accesses
    b.Lb_cost.Accounting.dsm;
  Alcotest.(check (float 1e-9)) "remote fraction 1" 1.0
    (Lb_cost.Dsm.remote_fraction p2 ~n:2 exec)

let test_dsm_per_process_sums () =
  let n = 4 in
  let exec = greedy bakery n in
  let per = Lb_cost.Dsm.per_process bakery ~n exec in
  Alcotest.(check int) "sum = total" (Lb_cost.Dsm.cost bakery ~n exec)
    (Array.fold_left ( + ) 0 per)

(* ---------------------------- Accounting ----------------------------- *)

let test_breakdown_consistency () =
  let n = 3 in
  let exec = greedy bakery n in
  let b = Lb_cost.Accounting.breakdown bakery ~n exec in
  Alcotest.(check int) "steps" (Execution.length exec) b.Lb_cost.Accounting.steps;
  Alcotest.(check int) "accesses = r+w+rmw" b.Lb_cost.Accounting.shared_accesses
    (b.Lb_cost.Accounting.reads + b.Lb_cost.Accounting.writes + b.Lb_cost.Accounting.rmws);
  Alcotest.(check int) "steps = accesses + crit" b.Lb_cost.Accounting.steps
    (b.Lb_cost.Accounting.shared_accesses + b.Lb_cost.Accounting.crits)

let test_measure_models () =
  let n = 2 in
  let exec = greedy ya n in
  let b = Lb_cost.Accounting.breakdown ya ~n exec in
  List.iter
    (fun (model, expected) ->
      Alcotest.(check int)
        (Lb_cost.Accounting.model_name model)
        expected
        (Lb_cost.Accounting.measure model ya ~n exec))
    [
      (Lb_cost.Accounting.Sc, b.Lb_cost.Accounting.sc);
      (Lb_cost.Accounting.Cc, b.Lb_cost.Accounting.cc);
      (Lb_cost.Accounting.Dsm_model, b.Lb_cost.Accounting.dsm);
      (Lb_cost.Accounting.Raw, b.Lb_cost.Accounting.shared_accesses);
    ]

let test_sc_leq_cc_on_greedy () =
  (* on spin-free (greedy canonical) executions every read changes state,
     so SC = raw >= CC; check the relationship explicitly *)
  List.iter
    (fun n ->
      let exec = greedy ya n in
      let b = Lb_cost.Accounting.breakdown ya ~n exec in
      Alcotest.(check int) "sc = raw on greedy" b.Lb_cost.Accounting.shared_accesses
        b.Lb_cost.Accounting.sc)
    [ 2; 4; 8 ]

let test_rmw_counted () =
  let exec = greedy ticket 2 in
  let b = Lb_cost.Accounting.breakdown ticket ~n:2 exec in
  Alcotest.(check int) "two rmws (one per process)" 2 b.Lb_cost.Accounting.rmws

let _ = step

let suite =
  [
    Alcotest.test_case "sc: solo = accesses" `Quick test_sc_counts_all_solo_accesses;
    Alcotest.test_case "sc: discounts spins" `Quick test_sc_discounts_spins;
    Alcotest.test_case "sc: per-process sums" `Quick test_sc_per_process_sums;
    Alcotest.test_case "sc: writes charged" `Quick test_sc_writes_always_charged;
    Alcotest.test_case "sc: crit free" `Quick test_sc_crit_free;
    Alcotest.test_case "cc: read caching" `Quick test_cc_read_caching;
    Alcotest.test_case "cc: cost decomposition" `Quick test_cc_cost_decomposition;
    Alcotest.test_case "cc: solo no invalidations" `Quick test_cc_solo_sequence;
    Alcotest.test_case "cc: bounded by raw" `Quick test_cc_leq_raw;
    Alcotest.test_case "dsm: local spins free" `Quick test_dsm_local_spins_free;
    Alcotest.test_case "dsm: unhomed remote" `Quick test_dsm_unhomed_always_remote;
    Alcotest.test_case "dsm: per-process sums" `Quick test_dsm_per_process_sums;
    Alcotest.test_case "accounting breakdown" `Quick test_breakdown_consistency;
    Alcotest.test_case "accounting measure" `Quick test_measure_models;
    Alcotest.test_case "sc = raw on greedy" `Quick test_sc_leq_cc_on_greedy;
    Alcotest.test_case "rmw counted" `Quick test_rmw_counted;
  ]
