module P = Lb_core.Permutation
module Pl = Lb_core.Pipeline
module B = Lb_core.Bounds

let ya = Lb_algos.Yang_anderson.algorithm
let bakery = Lb_algos.Bakery.algorithm

let test_run_checked_family () =
  List.iter
    (fun (algo : Lb_shmem.Algorithm.t) ->
      List.iter
        (fun n ->
          List.iter
            (fun pi -> ignore (Pl.run_checked algo ~n pi))
            (if n <= 3 then P.all n else [ P.identity n; P.reverse n ]))
        [ 1; 2; 3; 6 ])
    [ ya; bakery; Lb_algos.Burns.algorithm ]

let test_whole_zoo () =
  (* every register-based algorithm through the checked pipeline *)
  List.iter
    (fun (algo : Lb_shmem.Algorithm.t) ->
      List.iter
        (fun n ->
          if Lb_shmem.Algorithm.supports algo n then
            ignore (Pl.run_checked algo ~n (P.reverse n)))
        [ 2; 4 ])
    Lb_algos.Registry.register_based

let test_unsafe_algorithm_still_constructs () =
  (* Where Theorem 5.5 actually uses mutual exclusion: the construction
     and the decoder need only livelock freedom, so even the broken
     spinlock constructs, encodes and decodes — with per-process
     projections matching the canonical linearization. But without mutex,
     the critical metasteps of different processes are ⪯-incomparable, so
     {e different linearizations} may overlap critical sections: the
     decoded interleaving for pi=(0 1 2) at n=3 has p1 and p2 critical
     simultaneously. This is exactly the property the paper's proof of
     Theorem 5.5 invokes mutual exclusion for. *)
  let broken = Lb_algos.Broken_spinlock.algorithm in
  let n = 3 in
  let some_linearization_violates = ref false in
  List.iter
    (fun pi ->
      let r = Pl.run broken ~n pi in
      (* decode still reproduces each process's experience *)
      for i = 0 to n - 1 do
        Alcotest.(check bool) "projection matches" true
          (List.equal Lb_shmem.Step.equal
             (Lb_shmem.Execution.projection r.Pl.decoded i)
             (Lb_shmem.Execution.projection r.Pl.canonical i))
      done;
      (match Lb_mutex.Checker.check ~n r.Pl.decoded with
      | Ok () -> ()
      | Error (Lb_mutex.Checker.Mutex_violated _) ->
        some_linearization_violates := true
      | Error v -> Alcotest.fail (Lb_mutex.Checker.violation_to_string v)))
    (P.all n);
  Alcotest.(check bool)
    "without mutex, some linearization overlaps critical sections" true
    !some_linearization_violates;
  (* the deadlocking ablation constructs fully: its race needs
     interleavings the sequential construction never produces *)
  let flat = Lb_algos.Yang_anderson_flat.algorithm in
  ignore (Pl.run_checked flat ~n:3 (P.reverse 3))

let test_check_failed_exception () =
  (* run_checked rejects the broken spinlock with a typed, fully-located
     failure: algorithm, n, permutation and the stage that tripped *)
  let broken = Lb_algos.Broken_spinlock.algorithm in
  let pi = P.identity 3 in
  match Pl.run_checked broken ~n:3 pi with
  | _ -> Alcotest.fail "expected Check_failed"
  | exception (Pl.Check_failed { algo; n; pi = pi'; stage; message } as e) ->
    Alcotest.(check string) "algo" "broken_spinlock" algo;
    Alcotest.(check int) "n" 3 n;
    Alcotest.(check bool) "pi preserved" true (P.equal pi pi');
    Alcotest.(check bool) "stage is a known link" true
      (List.mem stage
         [ "canonical"; "decoded"; "projection"; "cost"; "encoding"; "roundtrip" ]);
    Alcotest.(check bool) "message non-empty" true (String.length message > 0);
    (* the registered printer renders every locating field *)
    let printed = Printexc.to_string e in
    List.iter
      (fun part ->
        Alcotest.(check bool) (part ^ " printed") true
          (Astring_contains.contains printed part))
      [ "broken_spinlock"; "n=3"; stage; message ];
    (* the Result-returning API agrees and prefixes the stage *)
    (match Pl.check broken ~n:3 (Pl.run broken ~n:3 pi) with
    | Ok () -> Alcotest.fail "check accepted what run_checked rejected"
    | Error msg ->
      Alcotest.(check string) "stage-prefixed message" (stage ^ ": " ^ message) msg)

let test_result_fields () =
  let pi = P.reverse 3 in
  let r = Pl.run ya ~n:3 pi in
  Alcotest.(check bool) "cost positive" true (r.Pl.cost > 0);
  Alcotest.(check int) "bits = encoding length" r.Pl.bits
    (Lb_core.Encode.length_bits r.Pl.encoding);
  Alcotest.(check bool) "pi kept" true (P.equal pi r.Pl.pi);
  Alcotest.(check bool) "canonical nonempty" true
    (Lb_shmem.Execution.length r.Pl.canonical > 0)

let test_check_catches_corruption () =
  let r = Pl.run ya ~n:2 (P.identity 2) in
  (* corrupt the decoded execution: drop its last step *)
  let stolen = Lb_shmem.Execution.steps r.Pl.decoded in
  let corrupted =
    Lb_shmem.Execution.of_steps (List.filteri (fun i _ -> i < List.length stolen - 1) stolen)
  in
  match Pl.check ya ~n:2 { r with Pl.decoded = corrupted } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corruption not caught"

let test_check_catches_wrong_pi () =
  let r = Pl.run ya ~n:2 (P.identity 2) in
  match Pl.check ya ~n:2 { r with Pl.pi = P.reverse 2 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong pi not caught"

let test_certificate_exhaustive () =
  let cert = Pl.certify ya ~n:4 ~perms:(P.all 4) ~exhaustive:true () in
  Alcotest.(check int) "perms" 24 cert.B.perms;
  Alcotest.(check bool) "exhaustive" true cert.B.exhaustive;
  Alcotest.(check bool) "distinct" true cert.B.distinct;
  (* pigeonhole: max bits must be at least log2 (#perms) *)
  Alcotest.(check bool) "max_bits >= log2 perms" true
    (float_of_int cert.B.max_bits >= cert.B.lower_bound_bits);
  Alcotest.(check bool) "cost bounds sane" true
    (cert.B.min_cost <= cert.B.max_cost
    && cert.B.mean_cost >= float_of_int cert.B.min_cost
    && cert.B.mean_cost <= float_of_int cert.B.max_cost);
  Alcotest.(check bool) "bits/cost constant positive" true (cert.B.bits_per_cost > 0.0)

let test_certify_empty_rejected () =
  (* regression: an empty family used to "certify" garbage —
     mean_cost = nan, min_cost = max_int, lower_bound_bits = -inf *)
  Alcotest.check_raises "empty perms"
    (Invalid_argument "Pipeline.certify: empty permutation family") (fun () ->
      ignore (Pl.certify ya ~n:3 ~perms:[] ()))

let test_certify_jobs_equivalence () =
  let perms = P.all 4 in
  let seq = Pl.certify ya ~n:4 ~perms ~exhaustive:true ~jobs:1 () in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d certificate equals sequential" jobs)
        true
        (seq = Pl.certify ya ~n:4 ~perms ~exhaustive:true ~jobs ()))
    [ 2; 3; 8 ]

let test_certificate_sampled () =
  let rng = Lb_util.Rng.create 3 in
  let perms = P.sample rng ~n:8 ~count:6 in
  let cert = Pl.certify bakery ~n:8 ~perms () in
  Alcotest.(check bool) "not exhaustive" false cert.B.exhaustive;
  Alcotest.(check bool) "distinct" true cert.B.distinct

let test_bounds_math () =
  Alcotest.(check (float 1e-9)) "bits_needed 1" 0.0 (B.bits_needed 1);
  Alcotest.(check bool) "bits_needed grows superlinearly" true
    (B.bits_needed 64 > 2.0 *. B.bits_needed 32);
  Alcotest.(check (float 1e-9)) "nlogn 8" 24.0 (B.nlogn 8);
  Alcotest.(check bool) "average close to max" true
    (B.average_bits_needed 16 >= B.bits_needed 16 -. 2.0 -. 1e-9)

let test_theorem_7_5_shape () =
  (* the empirical chain of Theorem 7.5 for exhaustive small n: distinct
     decodes force max_bits >= log2 n!, and cost >= max_bits / c *)
  List.iter
    (fun n ->
      let cert = Pl.certify ya ~n ~perms:(P.all n) ~exhaustive:true () in
      Alcotest.(check bool) "distinct" true cert.B.distinct;
      Alcotest.(check bool) "pigeonhole" true
        (float_of_int cert.B.max_bits >= B.bits_needed n);
      Alcotest.(check bool) "cost lower bound" true
        (float_of_int cert.B.max_cost
        >= B.bits_needed n /. cert.B.bits_per_cost))
    [ 2; 3; 4; 5 ]

let test_certificate_pp () =
  let cert = Pl.certify ya ~n:3 ~perms:(P.all 3) ~exhaustive:true () in
  let s = Format.asprintf "%a" B.pp_certificate cert in
  Alcotest.(check bool) "mentions algo" true (Astring_contains.contains s "yang_anderson");
  Alcotest.(check bool) "mentions distinct" true (Astring_contains.contains s "distinct")

let test_large_n () =
  (* the pipeline at the scale the experiments sweep *)
  List.iter
    (fun (algo, n) ->
      let pi = P.random (Lb_util.Rng.create (n * 31)) n in
      let r = Pl.run_checked algo ~n pi in
      Alcotest.(check bool) "bits >= log2 n!" true
        (float_of_int r.Pl.bits >= B.bits_needed n))
    [ (ya, 32); (ya, 48); (bakery, 24); (Lb_algos.Filter.algorithm, 16) ]

let test_exhaustive_s7 () =
  (* all 5040 permutations of S_7 through the checked pipeline, with
     distinctness -- the largest exhaustive certificate in the suite *)
  let cert = Pl.certify ya ~n:7 ~perms:(P.all 7) ~exhaustive:true () in
  Alcotest.(check int) "5040 perms" 5040 cert.B.perms;
  Alcotest.(check bool) "distinct" true cert.B.distinct;
  Alcotest.(check bool) "pigeonhole" true
    (float_of_int cert.B.max_bits >= B.bits_needed 7)

let suite =
  [
    Alcotest.test_case "large n" `Slow test_large_n;
    Alcotest.test_case "exhaustive S7" `Slow test_exhaustive_s7;
    Alcotest.test_case "run_checked family" `Quick test_run_checked_family;
    Alcotest.test_case "whole register zoo" `Quick test_whole_zoo;
    Alcotest.test_case "unsafe algorithms still construct" `Quick
      test_unsafe_algorithm_still_constructs;
    Alcotest.test_case "check_failed exception" `Quick test_check_failed_exception;
    Alcotest.test_case "result fields" `Quick test_result_fields;
    Alcotest.test_case "check catches corruption" `Quick test_check_catches_corruption;
    Alcotest.test_case "check catches wrong pi" `Quick test_check_catches_wrong_pi;
    Alcotest.test_case "certificate exhaustive S4" `Quick test_certificate_exhaustive;
    Alcotest.test_case "certificate sampled" `Quick test_certificate_sampled;
    Alcotest.test_case "certify empty rejected" `Quick test_certify_empty_rejected;
    Alcotest.test_case "certify jobs equivalence" `Quick test_certify_jobs_equivalence;
    Alcotest.test_case "bounds math" `Quick test_bounds_math;
    Alcotest.test_case "theorem 7.5 shape" `Slow test_theorem_7_5_shape;
    Alcotest.test_case "certificate pp" `Quick test_certificate_pp;
  ]
