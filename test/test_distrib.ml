(* Distributed sweeps: the per-entry claim protocol (take / heartbeat /
   steal-with-fencing / release), exactly-once failure publication, the
   Sweep_dist engine's determinism against the single-worker oracle,
   lease TTL + clock-skew handling in Store_lock, GC's claim awareness,
   and the chaos matrix — crash storms, skewed clocks and torn claim
   files must never damage the store or break byte-identity. *)

module Store = Lb_store.Store
module Store_key = Lb_store.Store_key
module Claim = Lb_store.Store_claim
module Lock = Lb_store.Store_lock
module Gc = Lb_store.Store_gc
module Sweep = Lb_store.Sweep
module Dist = Lb_store.Sweep_dist
module Wf = Lb_faults.Worker_faults

let ya = Lb_algos.Yang_anderson.algorithm

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d = Filename.temp_file "mutexlb_distrib" (Printf.sprintf "_%d" !ctr) in
    Sys.remove d;
    d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Store.open_ ~dir))

let read_file path = In_channel.with_open_bin path In_channel.input_all
let cert_text c = Lb_serve.Protocol.certificate_text c

(* valid store keys for protocol-only tests (any 32-hex digest is one) *)
let key_of tag = Digest.to_hex (Digest.string tag)

(* the family every determinism test sweeps: small enough to be quick,
   big enough that three workers genuinely interleave *)
let family () = Lb_serve.Protocol.family ~n:4 ~perms:12 ~seed:7

let oracle () =
  let pis, exhaustive = family () in
  let dir = fresh_dir () in
  let st = Store.open_ ~dir in
  let cert, report =
    Sweep.certify ~store:st ~jobs:1 ya ~n:4 ~perms:pis ~exhaustive ()
  in
  let manifest = read_file report.Sweep.manifest_path in
  rm_rf dir;
  (Option.get cert, manifest)

(* ---------------------------- claim protocol --------------------------- *)

let test_claim_lifecycle () =
  with_store (fun st ->
      let t = Claim.open_ st ~sweep_id:"s1" in
      let key = key_of "unit-a" in
      Alcotest.(check int) "empty snapshot" 0
        (Hashtbl.length (Claim.snapshot t));
      let c1 =
        match Claim.try_claim t ~key ~ttl:30.0 with
        | Some c -> c
        | None -> Alcotest.fail "fresh key refused"
      in
      Alcotest.(check int) "first epoch" 1 (Claim.epoch c1);
      Alcotest.(check string) "claim names its key" key (Claim.key c1);
      (* held and live: no double grant *)
      (match Claim.try_claim t ~key ~ttl:30.0 with
      | Some _ -> Alcotest.fail "double grant on a live claim"
      | None -> ());
      (match Hashtbl.find_opt (Claim.snapshot t) key with
      | Some (Claim.Held { epoch = 1; age }) ->
        Alcotest.(check bool) "young claim" true (age < 10.0)
      | _ -> Alcotest.fail "snapshot misses the held claim");
      Alcotest.(check bool) "heartbeat sticks" true (Claim.refresh c1);
      Claim.release c1;
      Claim.release c1 (* idempotent *);
      (match Hashtbl.find_opt (Claim.snapshot t) key with
      | Some (Claim.Released { epoch = 1 }) -> ()
      | _ -> Alcotest.fail "release did not leave a quit high-water mark");
      (* re-claim moves the epoch up — .quit keeps 1 from ever recurring *)
      let c2 =
        match Claim.try_claim t ~key ~ttl:30.0 with
        | Some c -> c
        | None -> Alcotest.fail "released key refused"
      in
      Alcotest.(check int) "epoch after release" 2 (Claim.epoch c2);
      Claim.abandon c2;
      match Hashtbl.find_opt (Claim.snapshot t) key with
      | Some (Claim.Released { epoch = 2 }) -> ()
      | _ -> Alcotest.fail "abandon did not release")

let test_claim_steal_and_fence () =
  with_store (fun st ->
      let t = Claim.open_ st ~sweep_id:"s1" in
      let key = key_of "unit-b" in
      let c1 = Option.get (Claim.try_claim t ~key ~ttl:0.05) in
      Unix.sleepf 0.12;
      (* expired: a snapshot shows it stale, and a steal wins epoch 2 *)
      (match Hashtbl.find_opt (Claim.snapshot t) key with
      | Some (Claim.Held { epoch = 1; age }) ->
        Alcotest.(check bool) "stale age" true (age > 0.05)
      | _ -> Alcotest.fail "expired claim vanished from the snapshot");
      let c2 =
        match Claim.try_claim t ~key ~ttl:0.05 with
        | Some c -> c
        | None -> Alcotest.fail "stale claim not stealable"
      in
      Alcotest.(check int) "steal bumps the epoch" 2 (Claim.epoch c2);
      (* fencing: the zombie's heartbeat fails, its release is a no-op *)
      Alcotest.(check bool) "zombie fenced" false (Claim.refresh c1);
      Claim.release c1;
      (match Hashtbl.find_opt (Claim.snapshot t) key with
      | Some (Claim.Held { epoch = 2; _ }) -> ()
      | _ -> Alcotest.fail "zombie release disturbed the successor");
      Alcotest.(check bool) "successor alive" true (Claim.refresh c2);
      Claim.release c2)

let test_claim_failure_exactly_once () =
  with_store (fun st ->
      let t = Claim.open_ st ~sweep_id:"s1" in
      let key = key_of "unit-c" in
      Alcotest.(check bool) "no record yet" true (Claim.failure t ~key = None);
      Alcotest.(check bool) "first publish wins" true
        (Claim.publish_failure t ~key ~message:"boom: first");
      Alcotest.(check bool) "second publish defers" false
        (Claim.publish_failure t ~key ~message:"boom: second");
      Alcotest.(check (option string)) "the winner's message stands"
        (Some "boom: first") (Claim.failure t ~key))

(* Satellite: the corruption matrix. Claim-file content is diagnostic
   only and unparsable names are debris, so truncation, bit flips,
   duplicates and garbage must never crash a scan, grant a key twice,
   or make the protocol trust a claim it shouldn't. *)
let test_claim_corruption_matrix () =
  with_store (fun st ->
      let t = Claim.open_ st ~sweep_id:"s1" in
      let keys = List.init 4 (fun i -> key_of (Printf.sprintf "fuzz-%d" i)) in
      let claims =
        List.map
          (fun key -> Option.get (Claim.try_claim t ~key ~ttl:30.0))
          keys
      in
      let applied = Wf.fuzz_claims ~seed:42 ~count:24 ~dir:(Claim.dir t) in
      Alcotest.(check bool) "fuzz ops landed" true (List.length applied > 0);
      (* scans survive, held keys stay held (torn content can't free
         them), a fresh key is still grantable *)
      let snap = Claim.snapshot t in
      List.iter
        (fun key ->
          match Hashtbl.find_opt snap key with
          | Some (Claim.Held { epoch = 1; _ }) -> (
            match Claim.try_claim t ~key ~ttl:30.0 with
            | Some _ -> Alcotest.fail "fuzz produced a double grant"
            | None -> ())
          | Some (Claim.Released _) | Some Claim.Free | None ->
            Alcotest.fail "fuzz freed a live claim"
          | Some (Claim.Held _) ->
            Alcotest.fail "fuzz moved a claim's epoch")
        keys;
      (match Claim.try_claim t ~key:(key_of "fresh") ~ttl:30.0 with
      | Some c -> Claim.release c
      | None -> Alcotest.fail "fresh key refused after fuzz");
      (* holders keep working over the debris *)
      List.iter
        (fun c ->
          Alcotest.(check bool) "holder survives fuzz" true (Claim.refresh c);
          Claim.release c)
        claims;
      (* and a released key's next epoch is still monotonic *)
      let key = List.hd keys in
      match Claim.try_claim t ~key ~ttl:30.0 with
      | Some c -> Alcotest.(check bool) "epoch moved up" true (Claim.epoch c >= 2)
      | None -> Alcotest.fail "released key refused after fuzz")

(* a duplicate same-epoch .quit next to a live .claim (the one ambiguous
   shape fuzz can produce) must resolve to Held — never a premature
   re-grant of an epoch someone still holds *)
let test_claim_duplicate_prefers_held () =
  with_store (fun st ->
      let t = Claim.open_ st ~sweep_id:"s1" in
      let key = key_of "dup" in
      let _c = Option.get (Claim.try_claim t ~key ~ttl:30.0) in
      let twin = Filename.concat (Claim.dir t) (key ^ ".1.quit") in
      Out_channel.with_open_bin twin (fun oc -> output_string oc "stale twin");
      (match Hashtbl.find_opt (Claim.snapshot t) key with
      | Some (Claim.Held { epoch = 1; _ }) -> ()
      | _ -> Alcotest.fail "duplicate .quit shadowed a live .claim");
      match Claim.try_claim t ~key ~ttl:30.0 with
      | Some _ -> Alcotest.fail "duplicate .quit allowed a double grant"
      | None -> ())

(* ------------------------- lease TTL and skew -------------------------- *)

(* Satellite: Store_lock's mtime+TTL fallback breaks leases whose holder
   pid-liveness probing cannot see (dead remote hosts, rsync'd stores) —
   including the clock-skew case where the lease mtime sits in the
   future. *)
let test_lock_ttl_breaks_stale () =
  with_store (fun st ->
      let _w = Result.get_ok (Lock.try_acquire_writer st ~purpose:"old") in
      Unix.sleepf 0.12;
      (* without a ttl the live-pid holder keeps the lease *)
      (match Lock.try_acquire_writer st ~purpose:"late" with
      | Ok _ -> Alcotest.fail "live lease broken without ttl"
      | Error h -> Alcotest.(check string) "holder" "old" h.Lock.h_purpose);
      (* with a ttl the unrefreshed lease is stale and breakable *)
      match Lock.try_acquire_writer ~ttl:0.05 st ~purpose:"late" with
      | Ok w ->
        Alcotest.(check bool) "new holder visible" true
          (Lock.writer_held st <> None);
        Lock.release_writer w
      | Error _ -> Alcotest.fail "ttl did not break the stale lease")

let test_lock_ttl_future_skew () =
  with_store (fun st ->
      let _w = Result.get_ok (Lock.try_acquire_writer st ~purpose:"skewed") in
      (* a skewed or rsync'd host stamped the lease into the future; the
         |now - mtime| rule must expire it all the same *)
      let lease =
        Filename.concat (Store.dir st) (Filename.concat "locks" "writer.lease")
      in
      let future = Unix.gettimeofday () +. 3600.0 in
      Unix.utimes lease future future;
      (match Lock.writer_held ~ttl:10.0 st with
      | None -> ()
      | Some _ -> Alcotest.fail "future-stamped lease counted as live");
      match Lock.try_acquire_writer ~ttl:10.0 st ~purpose:"late" with
      | Ok w -> Lock.release_writer w
      | Error _ -> Alcotest.fail "future-stamped lease not breakable")

let test_lock_refresh_keeps_lease () =
  with_store (fun st ->
      let w = Result.get_ok (Lock.try_acquire_writer st ~purpose:"beater") in
      (* heartbeat outruns the ttl *)
      for _ = 1 to 4 do
        Unix.sleepf 0.04;
        Lock.refresh_writer w
      done;
      (match Lock.writer_held ~ttl:0.1 st with
      | Some h -> Alcotest.(check string) "still held" "beater" h.Lock.h_purpose
      | None -> Alcotest.fail "refreshed lease expired");
      (* stop heartbeating: the same ttl now expires it *)
      Unix.sleepf 0.15;
      (match Lock.writer_held ~ttl:0.1 st with
      | None -> ()
      | Some _ -> Alcotest.fail "unrefreshed lease still counted live");
      Lock.release_writer w)

(* ------------------------ distributed determinism ---------------------- *)

let test_dist_matches_oracle () =
  let oracle_cert, oracle_manifest = oracle () in
  let pis, exhaustive = family () in
  with_store (fun st ->
      let cert, r =
        Dist.certify ~store:st ~jobs:2 ya ~n:4 ~perms:pis ~exhaustive ()
      in
      Alcotest.(check string) "certificate bytes" (cert_text oracle_cert)
        (cert_text (Option.get cert));
      Alcotest.(check string) "manifest bytes" oracle_manifest
        (read_file r.Dist.d_manifest_path);
      Alcotest.(check int) "all resolved" 12 r.Dist.d_total;
      Alcotest.(check int) "nothing failed" 0 r.Dist.d_failed)

let test_dist_three_workers_in_process () =
  let oracle_cert, oracle_manifest = oracle () in
  let pis, exhaustive = family () in
  with_store (fun st ->
      (* three workers in one process, racing on the same claims dir —
         the tightest interleavings this harness can produce *)
      let worker () =
        Domain.spawn (fun () ->
            Dist.work ~store:st ~jobs:1 ~ttl:5.0 ya ~n:4 ~perms:pis ())
      in
      let ds = [ worker (); worker (); worker () ] in
      let reports = List.map Domain.join ds in
      List.iter
        (fun r ->
          Alcotest.(check string) "every worker sees identical bytes"
            oracle_manifest
            (read_file r.Dist.d_manifest_path))
        reports;
      (* the work divided: hits + computed = total for each worker, and
         cluster-wide every unit was computed by someone *)
      let computed =
        List.fold_left (fun a r -> a + r.Dist.d_computed) 0 reports
      in
      Alcotest.(check bool) "no unit lost" true (computed >= 12);
      (* the certificate aggregated afterwards matches the oracle *)
      let cert, _ =
        Dist.certify ~store:st ~jobs:1 ya ~n:4 ~perms:pis ~exhaustive ()
      in
      Alcotest.(check string) "aggregate certificate" (cert_text oracle_cert)
        (cert_text (Option.get cert)))

let test_dist_steals_abandoned_claims () =
  let _, oracle_manifest = oracle () in
  let pis, _ = family () in
  with_store (fun st ->
      (* a "crashed" worker: claims three units and vanishes without
         computing or releasing them *)
      let fp = Store_key.fingerprint ya ~n:4 in
      let sweep_id =
        Store_key.sweep_id ~fp ~algo:ya.Lb_shmem.Algorithm.name ~n:4 ~perms:pis
          ~model:Store_key.sc_model
      in
      let t = Claim.open_ st ~sweep_id in
      let doomed =
        List.filteri (fun i _ -> i < 3) pis
        |> List.map (fun pi ->
               let key =
                 Store_key.derive ~fp ~algo:ya.Lb_shmem.Algorithm.name ~n:4 ~pi
                   ~model:Store_key.sc_model
               in
               Option.get (Claim.try_claim t ~key ~ttl:0.1))
      in
      Alcotest.(check int) "zombie holds three" 3 (List.length doomed);
      Unix.sleepf 0.25;
      (* a live worker arrives, steals the expired claims, finishes *)
      let stolen = ref 0 in
      let on_event = function Dist.Stolen _ -> incr stolen | _ -> () in
      let r = Dist.work ~store:st ~jobs:1 ~ttl:0.1 ~on_event ya ~n:4 ~perms:pis () in
      Alcotest.(check bool) "expired claims were stolen" true (!stolen >= 3);
      Alcotest.(check string) "manifest still byte-identical" oracle_manifest
        (read_file r.Dist.d_manifest_path);
      (* fencing held: the zombie's handles are dead *)
      List.iter
        (fun c ->
          Alcotest.(check bool) "zombie fenced" false (Claim.refresh c))
        doomed)

let test_dist_failures_exactly_once () =
  (* broken_spinlock fails pipeline checks on (most) permutations; the
     distributed engine must quarantine those deterministically — same
     manifest bytes as the sequential oracle, including failure lines *)
  let broken = Lb_algos.Broken_spinlock.algorithm in
  let n = 3 in
  let pis = Lb_core.Permutation.all n in
  let seq_manifest =
    let dir = fresh_dir () in
    let st = Store.open_ ~dir in
    let _, report =
      Sweep.certify ~store:st ~jobs:1 ~resume:true broken ~n ~perms:pis
        ~exhaustive:true ()
    in
    let m = read_file report.Sweep.manifest_path in
    rm_rf dir;
    m
  in
  with_store (fun st ->
      let cert, r =
        Dist.certify ~store:st ~jobs:2 broken ~n ~perms:pis ~exhaustive:true ()
      in
      ignore cert;
      Alcotest.(check string) "failure manifest bytes" seq_manifest
        (read_file r.Dist.d_manifest_path);
      Alcotest.(check bool) "failures quarantined" true (r.Dist.d_failed > 0);
      Alcotest.(check int) "failure list in family order"
        r.Dist.d_failed
        (List.length r.Dist.d_failures))

let test_dist_drain_cancels () =
  let pis, _ = family () in
  with_store (fun st ->
      let cancel = Lb_util.Pool.Cancel.create () in
      let started = Atomic.make false in
      let on_event = function
        | Dist.Unit _ -> Atomic.set started true
        | _ -> ()
      in
      let d =
        Domain.spawn (fun () ->
            match
              Dist.work ~store:st ~jobs:1 ~on_event ~cancel ya ~n:4 ~perms:pis
                ()
            with
            | _ -> `Finished
            | exception Lb_util.Pool.Cancelled -> `Drained)
      in
      let rec wait tries =
        if tries = 0 then ()
        else if not (Atomic.get started) then begin
          Unix.sleepf 0.01;
          wait (tries - 1)
        end
      in
      wait 500;
      Lb_util.Pool.Cancel.set cancel;
      (match Domain.join d with
      | `Drained -> ()
      | `Finished ->
        (* raced to completion before the cancel landed — legal *)
        ());
      (* whatever happened, the store is clean and resumable: a fresh
         worker run completes the family *)
      let r = Dist.work ~store:st ~jobs:1 ya ~n:4 ~perms:pis () in
      Alcotest.(check int) "family completed after drain" 12 r.Dist.d_total;
      Alcotest.(check int) "no failures" 0 r.Dist.d_failed)

(* ------------------------------ gc vs claims --------------------------- *)

let test_gc_refuses_live_claims () =
  with_store (fun st ->
      let t = Claim.open_ st ~sweep_id:"s-live" in
      let c = Option.get (Claim.try_claim t ~key:(key_of "gc") ~ttl:30.0) in
      let fp ~algo:_ ~n:_ = None in
      (match Gc.run ~current_fp:fp st with
      | Error h ->
        Alcotest.(check bool) "refusal names the claims" true
          (Astring_contains.contains h.Lock.h_purpose "claim")
      | Ok _ -> Alcotest.fail "gc ran under a live claim");
      (* dry runs are always allowed *)
      (match Gc.run ~dry:true ~current_fp:fp st with
      | Ok r -> Alcotest.(check int) "dry sweeps nothing" 0 r.Gc.g_claims_swept
      | Error _ -> Alcotest.fail "dry run refused");
      Claim.release c;
      (* released claims are debris: gc proceeds and sweeps the dir *)
      match Gc.run ~current_fp:fp st with
      | Ok r -> Alcotest.(check int) "claim dir swept" 1 r.Gc.g_claims_swept
      | Error _ -> Alcotest.fail "gc refused over released claims")

let test_gc_expired_claims_are_debris () =
  with_store (fun st ->
      let t = Claim.open_ st ~sweep_id:"s-dead" in
      let _c = Option.get (Claim.try_claim t ~key:(key_of "dead") ~ttl:30.0) in
      (* age the claim far past any ttl, as a SIGKILL'd worker would *)
      let n = Wf.skew_claims ~dir:(Claim.dir t) ~by:(-3600.0) in
      Alcotest.(check int) "claim aged" 1 n;
      let fp ~algo:_ ~n:_ = None in
      match Gc.run ~claim_ttl:60.0 ~current_fp:fp st with
      | Ok r -> Alcotest.(check int) "expired claim swept" 1 r.Gc.g_claims_swept
      | Error _ -> Alcotest.fail "gc refused over expired claims")

(* ------------------------------ fault plans ---------------------------- *)

let test_kill_points_deterministic () =
  let a = Wf.kill_points ~seed:5 ~workers:4 ~survivors:2 ~total:100 in
  let b = Wf.kill_points ~seed:5 ~workers:4 ~survivors:2 ~total:100 in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  let survivors = Array.to_list a |> List.filter (fun k -> k = max_int) in
  Alcotest.(check int) "survivor count" 2 (List.length survivors);
  Array.iter
    (fun k ->
      if k <> max_int then
        Alcotest.(check bool) "kill point in range" true (k >= 1 && k <= 25))
    a;
  let c = Wf.kill_points ~seed:6 ~workers:4 ~survivors:2 ~total:100 in
  Alcotest.(check bool) "different seed, different plan" true (a <> c)

(* ------------------------- subprocess chaos CLI ------------------------ *)

let exe = "../bin/mutexlb.exe"

let spawn args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin devnull
      devnull
  in
  Unix.close devnull;
  pid

let wait_status pid = snd (Unix.waitpid [] pid)

let worker_args ~dir extra =
  [
    "work"; "--algo"; "yang_anderson"; "-n"; "4"; "--seed"; "7"; "--perms";
    "12"; "--store"; dir; "-j"; "1"; "--claim-ttl"; "1";
  ]
  @ extra

(* The acceptance bar from the issue: three subprocess workers, one
   SIGKILL'd mid-sweep (deterministically, via the chaos hook, claims in
   flight), survivors finish; the manifest is byte-identical to the
   sequential oracle and the store verifies clean. *)
let test_chaos_subprocess_storm () =
  let _, oracle_manifest = oracle () in
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* the doomed worker runs alone first, so it is guaranteed to be the
     one computing when its kill point fires *)
  let doomed = spawn (worker_args ~dir [ "--chaos-kill-after"; "1" ]) in
  (match wait_status doomed with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | Unix.WEXITED c ->
    Alcotest.failf "doomed worker exited %d instead of dying" c
  | _ -> Alcotest.fail "doomed worker died oddly");
  (* its claims are now unhealable debris; fuzz them too, for spite *)
  let claims_root = Filename.concat dir "claims" in
  (match Sys.readdir claims_root with
  | [| sweep |] ->
    ignore
      (Wf.fuzz_claims ~seed:11 ~count:8
         ~dir:(Filename.concat claims_root sweep))
  | _ -> Alcotest.fail "expected exactly one sweep claims dir");
  (* two survivors converge over the wreckage *)
  let w1 = spawn (worker_args ~dir []) in
  let w2 = spawn (worker_args ~dir []) in
  (match (wait_status w1, wait_status w2) with
  | Unix.WEXITED 0, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "survivor worker failed");
  let st = Store.open_ ~dir in
  (* no lost units, no damage, byte-identity *)
  let ok, damaged =
    Store.fold st ~init:(0, 0) ~f:(fun (ok, bad) ~key:_ -> function
      | Ok _ -> (ok + 1, bad)
      | Error _ -> (ok, bad + 1))
  in
  Alcotest.(check int) "no damaged entries" 0 damaged;
  Alcotest.(check int) "every unit durable" 12 ok;
  match Store.manifest_paths st with
  | [ m ] ->
    Alcotest.(check string) "manifest byte-identical to oracle"
      oracle_manifest (read_file m)
  | ms -> Alcotest.failf "expected one manifest, found %d" (List.length ms)

(* certify --workers K drives the same machinery from one command *)
let test_certify_workers_cli () =
  let dir = fresh_dir () in
  let out = Filename.temp_file "mutexlb_distrib" ".out" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      Sys.remove out)
  @@ fun () ->
  let cmd =
    Printf.sprintf
      "%s certify --algo yang_anderson -n 4 --seed 7 --perms 12 --store %s \
       --workers 2 -j 1 > %s 2>/dev/null"
      exe (Filename.quote dir) (Filename.quote out)
  in
  Alcotest.(check int) "exit 0" 0 (Sys.command cmd);
  let oracle_cert, _ = oracle () in
  let text = read_file out in
  Alcotest.(check bool) "prints the oracle certificate" true
    (Astring_contains.contains text (cert_text oracle_cert))

(* --retry: temp-fails back off and retry, then give up with the same
   exit code the single attempt would have used *)
let test_certify_retry_backoff () =
  let out = Filename.temp_file "mutexlb_distrib" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove out) @@ fun () ->
  (* nothing listens on this port: every attempt is a temp-fail *)
  let status =
    Sys.command
      (Printf.sprintf
         "%s certify -n 3 --perms 2 --connect 1 --retry 2 --retry-backoff \
          0.02 > %s 2>&1"
         exe (Filename.quote out))
  in
  Alcotest.(check int) "gives up with exit 3" 3 status;
  let text = read_file out in
  Alcotest.(check bool) "announced its retries" true
    (Astring_contains.contains text "retrying in");
  Alcotest.(check bool) "counted attempts" true
    (Astring_contains.contains text "attempt 3/3")

let suite =
  [
    Alcotest.test_case "claim lifecycle" `Quick test_claim_lifecycle;
    Alcotest.test_case "claim steal + fence" `Quick test_claim_steal_and_fence;
    Alcotest.test_case "failure exactly-once" `Quick
      test_claim_failure_exactly_once;
    Alcotest.test_case "claim corruption matrix" `Quick
      test_claim_corruption_matrix;
    Alcotest.test_case "duplicate quit prefers held" `Quick
      test_claim_duplicate_prefers_held;
    Alcotest.test_case "lock ttl breaks stale" `Quick test_lock_ttl_breaks_stale;
    Alcotest.test_case "lock ttl future skew" `Quick test_lock_ttl_future_skew;
    Alcotest.test_case "lock refresh keeps lease" `Quick
      test_lock_refresh_keeps_lease;
    Alcotest.test_case "dist matches oracle" `Quick test_dist_matches_oracle;
    Alcotest.test_case "dist three workers" `Slow
      test_dist_three_workers_in_process;
    Alcotest.test_case "dist steals abandoned claims" `Quick
      test_dist_steals_abandoned_claims;
    Alcotest.test_case "dist failures exactly-once" `Quick
      test_dist_failures_exactly_once;
    Alcotest.test_case "dist drain cancels" `Quick test_dist_drain_cancels;
    Alcotest.test_case "gc refuses live claims" `Quick
      test_gc_refuses_live_claims;
    Alcotest.test_case "gc sweeps expired claims" `Quick
      test_gc_expired_claims_are_debris;
    Alcotest.test_case "kill points deterministic" `Quick
      test_kill_points_deterministic;
    Alcotest.test_case "chaos subprocess storm" `Slow
      test_chaos_subprocess_storm;
    Alcotest.test_case "certify --workers cli" `Slow test_certify_workers_cli;
    Alcotest.test_case "certify --retry backoff" `Quick
      test_certify_retry_backoff;
  ]
