(* The domain pool behind every parallel sweep: order preservation,
   fail-fast exception propagation, sequential equivalence at jobs=1,
   nested-map degradation, and — the property the whole engine rests
   on — parallel certify sweeps equal to sequential ones bit for bit. *)

module Pool = Lb_util.Pool
module P = Lb_core.Permutation
module Pl = Lb_core.Pipeline

let ya = Lb_algos.Yang_anderson.algorithm
let bakery = Lb_algos.Bakery.algorithm

let test_order_preserved () =
  let xs = List.init 500 Fun.id in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun i -> i * i) xs)
    (Pool.map ~jobs:8 (fun i -> i * i) xs)

let test_edge_shapes () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~jobs:4 succ [ 7 ]);
  Alcotest.(check (list string)) "type change" [ "0"; "1"; "2" ]
    (Pool.map ~jobs:2 string_of_int [ 0; 1; 2 ])

let test_jobs_one_is_sequential () =
  (* jobs=1 must be a plain List.map: left-to-right effect order *)
  let seen = ref [] in
  let ys =
    Pool.map ~jobs:1
      (fun i ->
        seen := i :: !seen;
        i + 1)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4; 5 ] ys;
  Alcotest.(check (list int)) "effects in order" [ 4; 3; 2; 1 ] !seen

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.map: jobs must be >= 1")
    (fun () -> ignore (Pool.map ~jobs:0 succ [ 1; 2 ]))

let test_exception_propagates () =
  match Pool.map ~jobs:4 (fun i -> if i = 37 then failwith "boom" else i)
          (List.init 100 Fun.id)
  with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "payload" "boom" m

let test_exception_fail_fast () =
  (* the failing item is handed out first; once its exception is
     recorded no further items are dispensed, so most of the sweep never
     runs *)
  let executed = Atomic.make 0 in
  (match
     Pool.map ~jobs:2
       (fun i ->
         if i = 0 then failwith "first";
         Atomic.incr executed)
       (List.init 10_000 Fun.id)
   with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "stopped early" true (Atomic.get executed < 10_000)

let test_nested_map_degrades () =
  (* a map inside a pool worker runs sequentially instead of spawning
     another layer of domains — same results either way *)
  Alcotest.(check bool) "not in worker outside" false (Pool.in_worker ());
  let rows =
    Pool.map ~jobs:2
      (fun row ->
        Alcotest.(check bool) "in worker inside" true (Pool.in_worker ());
        Pool.map ~jobs:4 (fun x -> (row * 10) + x) [ 0; 1; 2 ])
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "flag restored" false (Pool.in_worker ());
  Alcotest.(check (list (list int)))
    "nested results"
    [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
    rows

let test_iter () =
  let total = Atomic.make 0 in
  Pool.iter ~jobs:4 (fun i -> ignore (Atomic.fetch_and_add total i))
    (List.init 100 Fun.id);
  Alcotest.(check int) "all items visited" 4950 (Atomic.get total)

let test_default_jobs () =
  let before = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs before)
    (fun () ->
      Pool.set_default_jobs 5;
      Alcotest.(check int) "override" 5 (Pool.default_jobs ());
      Alcotest.check_raises "zero"
        (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1")
        (fun () -> Pool.set_default_jobs 0))

let test_heavy_work_correct () =
  (* real pipeline runs (allocation-heavy, GC-active) across domains
     agree with the sequential sweep *)
  let perms = P.all 4 in
  let cost pi = (Pl.run_checked ya ~n:4 pi).Pl.cost in
  Alcotest.(check (list int))
    "costs identical" (List.map cost perms)
    (Pool.map ~jobs:4 cost perms)

let test_chunk_list () =
  Alcotest.(check (list (list int)))
    "uneven tail"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6 ] ]
    (Pool.chunk_list 3 (List.init 7 Fun.id));
  Alcotest.(check (list (list int))) "empty" [] (Pool.chunk_list 4 []);
  Alcotest.(check (list (list int)))
    "chunk larger than list"
    [ [ 1; 2 ] ]
    (Pool.chunk_list 10 [ 1; 2 ]);
  Alcotest.check_raises "size=0"
    (Invalid_argument "Pool.chunk_list: size must be >= 1") (fun () ->
      ignore (Pool.chunk_list 0 [ 1 ]))

let test_map_chunked_invalid () =
  Alcotest.check_raises "chunk=0"
    (Invalid_argument "Pool.map_chunked: chunk must be >= 1") (fun () ->
      ignore (Pool.map_chunked ~jobs:2 ~chunk:0 succ [ 1 ]))

let map_chunked_equals_map =
  (* the property map_chunked exists to satisfy: for every chunk size and
     job count it is observably Pool.map — same results, same order *)
  QCheck.Test.make ~name:"Pool.map_chunked = Pool.map" ~count:100
    QCheck.(
      triple (int_range 1 9) (int_range 1 5) (small_list small_signed_int))
    (fun (chunk, jobs, xs) ->
      let f x = (x * 31) + 7 in
      Pool.map_chunked ~jobs ~chunk f xs = Pool.map ~jobs f xs)

let certify_parallel_equals_sequential =
  QCheck.Test.make ~name:"parallel certify = sequential certify" ~count:10
    QCheck.(triple (int_range 0 1) (int_range 2 6) (int_range 1 8))
    (fun (ai, n, count) ->
      let algo = if ai = 0 then ya else bakery in
      let perms =
        P.sample (Lb_util.Rng.create ((n * 97) + count)) ~n ~count
      in
      let seq = Pl.certify algo ~n ~perms ~jobs:1 () in
      let par = Pl.certify algo ~n ~perms ~jobs:4 () in
      seq = par)

let suite =
  [
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "edge shapes" `Quick test_edge_shapes;
    Alcotest.test_case "jobs=1 sequential" `Quick test_jobs_one_is_sequential;
    Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "exception fail-fast" `Quick test_exception_fail_fast;
    Alcotest.test_case "nested map degrades" `Quick test_nested_map_degrades;
    Alcotest.test_case "iter" `Quick test_iter;
    Alcotest.test_case "default jobs" `Quick test_default_jobs;
    Alcotest.test_case "heavy work correct" `Quick test_heavy_work_correct;
    Alcotest.test_case "chunk_list shapes" `Quick test_chunk_list;
    Alcotest.test_case "map_chunked invalid chunk" `Quick
      test_map_chunked_invalid;
    QCheck_alcotest.to_alcotest map_chunked_equals_map;
    QCheck_alcotest.to_alcotest certify_parallel_equals_sequential;
  ]
