(* Direct executable checks of Lemmas 5.8 and 5.10 over every down-closed
   prefix of the canonical metastep order, across algorithms and
   permutations. These are the decoder's correctness prerequisites; the
   decoder exercises them operationally, and these tests state them
   verbatim. *)

module C = Lb_core.Construct
module P = Lb_core.Permutation
module V = Lb_core.Verify

let check_ok label = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e

let cases =
  List.concat_map
    (fun (algo : Lb_shmem.Algorithm.t) ->
      List.map
        (fun n ->
          Alcotest.test_case
            (Printf.sprintf "lemmas 5.8/5.10: %s n=%d" algo.Lb_shmem.Algorithm.name n)
            `Quick
            (fun () ->
              List.iter
                (fun pi ->
                  let c = C.run algo ~n pi in
                  check_ok "5.8" (V.lemma_5_8 c);
                  check_ok "5.10" (V.lemma_5_10 c))
                (if n <= 3 then P.all n
                 else [ P.identity n; P.reverse n;
                        P.random (Lb_util.Rng.create (17 * n)) n ])))
        [ 2; 3; 5 ])
    [
      Lb_algos.Yang_anderson.algorithm;
      Lb_algos.Bakery.algorithm;
      Lb_algos.Filter.algorithm;
      Lb_algos.Burns.algorithm;
      Lb_algos.Szymanski.algorithm;
    ]

let suite = cases
