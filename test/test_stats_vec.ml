open Lb_util

(* ------------------------------- Stats ------------------------------- *)

let test_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 1.25) s.Stats.stddev

let test_summary_singleton () =
  let s = Stats.summarize [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 7.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "sd" 0.0 s.Stats.stddev

let test_summary_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize []))

(* mean and percentile must refuse empty samples the same way summarize
   does — silent NaN fields would poison every downstream table *)
let test_mean_empty () =
  Alcotest.(check (float 1e-9)) "mean" 4.0 (Stats.mean [ 2.0; 4.0; 6.0 ]);
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean []))

let test_percentile_empty () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [] 50.0))

let test_summarize_ints () =
  let s = Stats.summarize_ints [ 2; 4; 6 ] in
  Alcotest.(check (float 1e-9)) "mean" 4.0 s.Stats.mean

let test_percentile () =
  let xs = List.map float_of_int [ 5; 1; 4; 2; 3 ] in
  Alcotest.(check (float 1e-9)) "p0 -> min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

let test_ratio () =
  Alcotest.(check (float 1e-9)) "normal" 2.0 (Stats.ratio 4.0 2.0);
  Alcotest.(check bool) "div by zero is nan" true (Float.is_nan (Stats.ratio 1.0 0.0))

(* -------------------------------- Vec -------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 198 (Vec.get v 99);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 100))

let test_vec_set_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 9;
  Alcotest.(check int) "set" 9 (Vec.get v 1);
  Alcotest.(check (option int)) "last" (Some 3) (Vec.last v);
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  Alcotest.(check int) "len after pop" 2 (Vec.length v);
  ignore (Vec.pop v);
  ignore (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int)))
    "iteri order"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (List.rev !acc)

let test_vec_search () =
  let v = Vec.of_list [ 1; 3; 5 ] in
  Alcotest.(check bool) "exists odd" true (Vec.exists (fun x -> x = 5) v);
  Alcotest.(check bool) "forall odd" true (Vec.for_all (fun x -> x mod 2 = 1) v);
  Alcotest.(check (option int)) "find" (Some 3) (Vec.find_opt (fun x -> x > 2) v);
  Alcotest.(check (option int)) "find none" None (Vec.find_opt (fun x -> x > 9) v)

let test_vec_transforms () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8 ] (Vec.to_list (Vec.map (( * ) 2) v));
  Alcotest.(check (list int)) "filter" [ 2; 4 ] (Vec.to_list (Vec.filter (fun x -> x mod 2 = 0) v));
  Alcotest.(check (list int)) "sub" [ 2; 3 ] (Vec.to_list (Vec.sub v ~pos:1 ~len:2));
  let c = Vec.copy v in
  Vec.set c 0 99;
  Alcotest.(check int) "copy is deep" 1 (Vec.get v 0);
  Vec.append v c;
  Alcotest.(check int) "append" 8 (Vec.length v);
  Vec.clear v;
  Alcotest.(check int) "clear" 0 (Vec.length v)

let vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let vec_push_equals_list =
  QCheck.Test.make ~name:"vec push sequence equals list" ~count:200
    QCheck.(list int)
    (fun l ->
      let v = Vec.create () in
      List.iter (Vec.push v) l;
      Vec.to_list v = l)

(* ------------------------------- Table ------------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("bb", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_int_row t [ 10; 200 ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "contains row" true
    (Astring_contains.contains s "200");
  Alcotest.(check bool) "contains header" true (Astring_contains.contains s "bb")

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "nan" "-" (Table.cell_f nan);
  Alcotest.(check string) "four decimals" "0.3333" (Table.cell_f4 (1.0 /. 3.0))

let suite =
  [
    Alcotest.test_case "stats summary" `Quick test_summary;
    Alcotest.test_case "stats singleton" `Quick test_summary_singleton;
    Alcotest.test_case "stats empty" `Quick test_summary_empty;
    Alcotest.test_case "stats mean empty" `Quick test_mean_empty;
    Alcotest.test_case "stats percentile empty" `Quick test_percentile_empty;
    Alcotest.test_case "stats ints" `Quick test_summarize_ints;
    Alcotest.test_case "stats percentile" `Quick test_percentile;
    Alcotest.test_case "stats ratio" `Quick test_ratio;
    Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec set/pop/last" `Quick test_vec_set_pop_last;
    Alcotest.test_case "vec iter/fold" `Quick test_vec_iter_fold;
    Alcotest.test_case "vec search" `Quick test_vec_search;
    Alcotest.test_case "vec transforms" `Quick test_vec_transforms;
    QCheck_alcotest.to_alcotest vec_roundtrip;
    QCheck_alcotest.to_alcotest vec_push_equals_list;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "table cells" `Quick test_table_cells;
  ]
