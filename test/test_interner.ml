module I = Lb_util.Interner

let test_dense_ids () =
  let t = I.create () in
  Alcotest.(check int) "first id" 0 (I.intern t "a");
  Alcotest.(check int) "second id" 1 (I.intern t "b");
  Alcotest.(check int) "repeat returns first id" 0 (I.intern t "a");
  Alcotest.(check int) "size" 2 (I.size t);
  Alcotest.(check string) "name inverts intern" "b" (I.name t 1);
  Alcotest.(check (option int)) "lookup hit" (Some 0) (I.lookup t "a");
  Alcotest.(check (option int)) "lookup miss" None (I.lookup t "c");
  Alcotest.(check int) "lookup does not intern" 2 (I.size t)

let test_adversarial_strings () =
  (* delimiter characters, empty strings and prefixes never collide *)
  let t = I.create () in
  let strings = [ ""; ";"; "|"; "a;b"; "a"; ";b"; "a;"; "b"; "a|b"; "ab" ] in
  let ids = List.map (I.intern t) strings in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check int) "all ids distinct" (List.length strings)
    (List.length distinct);
  List.iter2
    (fun s id -> Alcotest.(check string) "roundtrip" s (I.name t id))
    strings ids

let test_bad_id () =
  let t = I.create () in
  ignore (I.intern t "x");
  Alcotest.check_raises "negative id"
    (Invalid_argument "Interner.name: unknown id -1 (size 1)") (fun () ->
      ignore (I.name t (-1)));
  Alcotest.check_raises "too-large id"
    (Invalid_argument "Interner.name: unknown id 1 (size 1)") (fun () ->
      ignore (I.name t 1))

let test_concurrent_interning () =
  (* many domains interning an overlapping set of strings: ids must stay
     consistent (same string -> same id) and the table must end up with
     exactly the distinct strings *)
  let t = I.create () in
  let words = Array.init 64 (fun i -> Printf.sprintf "w%d" (i mod 16)) in
  let results =
    Lb_util.Pool.map ~jobs:4
      (fun w -> (w, I.intern t w))
      (Array.to_list words)
  in
  Alcotest.(check int) "16 distinct strings" 16 (I.size t);
  List.iter
    (fun (w, id) ->
      Alcotest.(check string) "id maps back to its string" w (I.name t id);
      Alcotest.(check int) "re-intern agrees" id (I.intern t w))
    results

let suite =
  [
    Alcotest.test_case "dense ids" `Quick test_dense_ids;
    Alcotest.test_case "adversarial strings" `Quick test_adversarial_strings;
    Alcotest.test_case "bad id" `Quick test_bad_id;
    Alcotest.test_case "concurrent interning" `Quick test_concurrent_interning;
  ]
